#include "exec/parallel.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/cancel.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "eval/evaluator.h"
#include "value/compare.h"

namespace cypher {
namespace {

// ---- Task plumbing ----------------------------------------------------------

/// Runs `fn(0) .. fn(num_tasks - 1)` on the shared pool and returns the
/// error of the LOWEST failing task — the error the sequential walk would
/// hit first, because tasks partition the sequential enumeration in order
/// and the read fragment is side-effect-free (a later task's error cannot
/// have been caused by an earlier task's work).
Status RunOrdered(size_t num_tasks, size_t workers,
                  const std::function<Status(size_t)>& fn) {
  std::vector<Status> status(num_tasks);  // default OK
  ThreadPool::Shared().Run(num_tasks, workers,
                           [&](size_t task) { status[task] = fn(task); });
  for (Status& st : status) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

/// Row-range chunk size: the configured morsel, shrunk so every worker gets
/// several tasks (load balancing against skewed per-row match costs), never
/// below one row.
size_t RowChunk(const ParallelPlan& plan, size_t num_rows) {
  size_t spread = plan.workers * 8;
  size_t balanced = (num_rows + spread - 1) / spread;
  return std::max<size_t>(1, std::min(plan.morsel, balanced));
}

// ---- Shared per-record match body ------------------------------------------

/// Enumerates matches of `compiled` for driving record `r` (restricted to
/// `morsel` when non-null) and appends the extended output rows, exactly as
/// ExecMatch's sequential sink does. Returns whether any row was emitted
/// (i.e. some match also passed `where`).
Result<bool> MatchOneRecord(const EvalContext& ec, const MatchOptions& mopts,
                            const CompiledMatch& compiled, const Table& input,
                            size_t r, const Expr* where,
                            const std::vector<std::string>& new_vars,
                            const AnchorMorsel* morsel,
                            std::vector<std::vector<Value>>* out) {
  Bindings bindings(&input, r);
  bool any = false;
  MatchSink sink = [&](const MatchAssignment& assignment) -> Result<bool> {
    if (where != nullptr) {
      Bindings wb = bindings;
      for (const auto& [name, value] : assignment.entries()) {
        wb.Push(name, value);
      }
      CYPHER_ASSIGN_OR_RETURN(Tri pass, EvaluatePredicate(ec, wb, *where));
      if (pass != Tri::kTrue) return true;  // keep enumerating
    }
    const std::vector<Value>& base = input.row(r);
    std::vector<Value> row;
    row.reserve(base.size() + new_vars.size());
    row.insert(row.end(), base.begin(), base.end());
    for (const std::string& var : new_vars) {
      const Value* v = assignment.Find(var);
      CYPHER_CHECK(v != nullptr && "pattern variable not assigned");
      row.push_back(*v);
    }
    out->push_back(std::move(row));
    any = true;
    return true;
  };
  Status st = morsel != nullptr
                  ? MatchCompiledMorsel(ec, bindings, compiled, mopts, *morsel,
                                        sink)
                  : MatchCompiled(ec, bindings, compiled, mopts, sink);
  CYPHER_RETURN_NOT_OK(st);
  return any;
}

}  // namespace

// ---- Planning ---------------------------------------------------------------

std::optional<ParallelPlan> PlanParallelMatch(const EvalOptions& options,
                                              const PropertyGraph& graph,
                                              const CompiledMatch& compiled,
                                              size_t num_rows) {
  if (options.parallel_workers <= 1) return std::nullopt;
  if (num_rows == 0 || compiled.impossible || compiled.paths.empty()) {
    return std::nullopt;
  }
  size_t anchor_cost = std::max<size_t>(1, compiled.paths.front().anchor.cost);
  // A var-length / BFS leg multiplies the per-start work; saturate rather
  // than overflow (both factors are already capped estimates).
  size_t work = num_rows * anchor_cost;
  if (compiled.expand_safe && compiled.expand_cost > 1) {
    constexpr size_t kWorkCap = std::numeric_limits<size_t>::max() / 2;
    work = work > kWorkCap / compiled.expand_cost
               ? kWorkCap
               : work * compiled.expand_cost;
  }
  if (work < options.parallel_min_cost) return std::nullopt;

  ParallelPlan plan;
  plan.workers = options.parallel_workers;
  plan.morsel = std::max<size_t>(1, options.parallel_morsel_size);
  // Plenty of driving records: contiguous row ranges saturate the workers
  // with no per-task anchor bookkeeping.
  if (num_rows >= plan.workers * 4) return plan;
  // Few records driving a big scan: splitting the anchor domain keeps every
  // worker busy when it yields at least a tile per worker.
  size_t domain = AnchorScanDomain(graph, compiled);
  if (domain >= plan.workers * plan.morsel) {
    plan.anchor_mode = true;
    plan.domain = domain;
    return plan;
  }
  // Few starts but an expensive expansion behind each: parallelism must
  // come from inside the walk — morsel-split the expansion frontier.
  if (compiled.expand_safe && compiled.expand_cost > 1) {
    plan.expand_mode = true;
    return plan;
  }
  // Mid-size scan domain: anchor tiles still beat nothing.
  if (domain > plan.morsel) {
    plan.anchor_mode = true;
    plan.domain = domain;
    return plan;
  }
  // Not a scan anchor (or a tiny one): row mode still helps when there are
  // at least two rows to split; a single cheap-anchored row stays sequential.
  if (num_rows >= 2) return plan;
  return std::nullopt;
}

std::string DescribeParallelMatch(const EvalOptions& options,
                                  const CompiledMatch& compiled) {
  if (options.parallel_workers <= 1) return "";
  if (compiled.impossible || compiled.paths.empty()) return "";
  std::string out =
      "parallel(workers=" + std::to_string(options.parallel_workers) +
      ", morsel=" +
      std::to_string(std::max<size_t>(1, options.parallel_morsel_size));
  if (compiled.expand_safe) out += ", expand";
  return out + ")";
}

// ---- Parallel MATCH ---------------------------------------------------------

Status ParallelMatchRows(const EvalContext& ec, const MatchOptions& mopts,
                         const ParallelPlan& plan, const Table& input,
                         const CompiledMatch& compiled, const Expr* where,
                         const std::vector<std::string>& new_vars,
                         bool optional_match, std::vector<size_t>* unmatched,
                         Table* out) {
  const size_t num_rows = input.num_rows();
  PropertyGraph::ParallelReadScope read_scope(*ec.graph);

  if (plan.expand_mode) {
    // Expand mode: the row loop runs sequentially and the matcher fans each
    // var-length walk / BFS level out across the pool instead (a per-task
    // trail-state arena merged in task-index order keeps emission order
    // byte-identical), so the sink, OPTIONAL null extension, and unmatched
    // bookkeeping are literally the sequential loop's.
    MatchOptions expand_opts = mopts;
    expand_opts.expand_workers = plan.workers;
    std::vector<std::vector<Value>> rows;
    for (size_t r = 0; r < num_rows; ++r) {
      rows.clear();
      CYPHER_ASSIGN_OR_RETURN(
          bool any, MatchOneRecord(ec, expand_opts, compiled, input, r, where,
                                   new_vars, nullptr, &rows));
      for (std::vector<Value>& row : rows) out->AddRow(std::move(row));
      if (!any) {
        if (optional_match) {
          std::vector<Value> row = input.row(r);
          row.resize(row.size() + new_vars.size());  // nulls
          out->AddRow(std::move(row));
        }
        if (unmatched != nullptr) unmatched->push_back(r);
      }
    }
    return Status::OK();
  }

  if (!plan.anchor_mode) {
    // Row mode: each task owns a contiguous row range and produces its
    // complete output chunk — including OPTIONAL null extensions and its
    // slice of the unmatched list — so the merge is pure concatenation in
    // task order.
    size_t chunk = RowChunk(plan, num_rows);
    size_t tasks = (num_rows + chunk - 1) / chunk;
    struct RowTaskResult {
      std::vector<std::vector<Value>> rows;
      std::vector<size_t> unmatched;
    };
    std::vector<RowTaskResult> results(tasks);
    CYPHER_RETURN_NOT_OK(
        RunOrdered(tasks, plan.workers, [&](size_t task) -> Status {
          RowTaskResult& res = results[task];
          CancelGate gate(ec.cancel);
          size_t begin = task * chunk;
          size_t end = std::min(num_rows, begin + chunk);
          for (size_t r = begin; r < end; ++r) {
            CYPHER_RETURN_NOT_OK(gate.Check());
            CYPHER_ASSIGN_OR_RETURN(
                bool any, MatchOneRecord(ec, mopts, compiled, input, r, where,
                                         new_vars, nullptr, &res.rows));
            if (!any) {
              if (optional_match) {
                std::vector<Value> row = input.row(r);
                row.resize(row.size() + new_vars.size());  // nulls
                res.rows.push_back(std::move(row));
              }
              if (unmatched != nullptr) res.unmatched.push_back(r);
            }
          }
          return Status::OK();
        }));
    for (RowTaskResult& res : results) {
      for (std::vector<Value>& row : res.rows) out->AddRow(std::move(row));
      if (unmatched != nullptr) {
        unmatched->insert(unmatched->end(), res.unmatched.begin(),
                          res.unmatched.end());
      }
    }
    return Status::OK();
  }

  // Anchor mode: tasks = driving rows x anchor-domain tiles, tile varying
  // fastest, so concatenating task outputs in task index order replays the
  // sequential (row, ascending anchor position) enumeration exactly.
  // Whether a record matched at all is only known once every tile reports,
  // so OPTIONAL null rows and the unmatched list are decided at the merge.
  size_t tiles = (plan.domain + plan.morsel - 1) / plan.morsel;
  size_t tasks = num_rows * tiles;
  struct TileResult {
    std::vector<std::vector<Value>> rows;
    bool any = false;
  };
  std::vector<TileResult> results(tasks);
  CYPHER_RETURN_NOT_OK(
      RunOrdered(tasks, plan.workers, [&](size_t task) -> Status {
        TileResult& res = results[task];
        CYPHER_RETURN_NOT_OK(CancelGate(ec.cancel).Check());
        size_t r = task / tiles;
        size_t tile = task % tiles;
        AnchorMorsel morsel{tile * plan.morsel,
                            std::min(plan.domain, (tile + 1) * plan.morsel)};
        CYPHER_ASSIGN_OR_RETURN(
            res.any, MatchOneRecord(ec, mopts, compiled, input, r, where,
                                    new_vars, &morsel, &res.rows));
        return Status::OK();
      }));
  for (size_t r = 0; r < num_rows; ++r) {
    bool any = false;
    for (size_t tile = 0; tile < tiles; ++tile) {
      TileResult& res = results[r * tiles + tile];
      any |= res.any;
      for (std::vector<Value>& row : res.rows) out->AddRow(std::move(row));
    }
    if (!any) {
      if (optional_match) {
        std::vector<Value> row = input.row(r);
        row.resize(row.size() + new_vars.size());  // nulls
        out->AddRow(std::move(row));
      }
      if (unmatched != nullptr) unmatched->push_back(r);
    }
  }
  return Status::OK();
}

// ---- Parallel projection ----------------------------------------------------

namespace {

/// ORDER BY key evaluation for one output row, replicating ExecProjection's
/// eval_sort_keys: projected aliases shadow the underlying record.
Result<std::vector<Value>> EvalSortKeys(const EvalContext& ec,
                                        const Bindings& base,
                                        const std::vector<ProjItemView>& items,
                                        const std::vector<Value>& out_row,
                                        const std::vector<SortItem>& order_by,
                                        const AggregateScope* scope) {
  Bindings sb = base;
  for (size_t i = 0; i < items.size(); ++i) {
    sb.Push(*items[i].alias, out_row[i]);
  }
  std::vector<Value> keys;
  keys.reserve(order_by.size());
  for (const SortItem& sort : order_by) {
    CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ec, sb, *sort.expr, scope));
    keys.push_back(std::move(v));
  }
  return keys;
}

}  // namespace

Result<bool> TryParallelProject(const EvalContext& ec,
                                const EvalOptions& options, const Table& input,
                                const std::vector<ProjItemView>& items,
                                const std::vector<SortItem>& order_by,
                                Table* out,
                                std::vector<std::vector<Value>>* sort_keys) {
  const size_t num_rows = input.num_rows();
  if (options.parallel_workers <= 1 || num_rows < 2 ||
      num_rows < options.parallel_min_cost) {
    return false;
  }
  ParallelPlan plan;
  plan.workers = options.parallel_workers;
  plan.morsel = std::max<size_t>(1, options.parallel_morsel_size);

  // RowEval is immutable after construction; one shared set serves every
  // worker (the per-task state is just the output slot).
  std::vector<RowEval> fast;
  fast.reserve(items.size());
  for (const ProjItemView& item : items) {
    fast.emplace_back(ec, input, *item.expr);
  }

  // Results land in slots indexed by input row — placement by index, not by
  // thread, so the merged order is the sequential order by construction.
  std::vector<std::vector<Value>> rows(num_rows);
  std::vector<std::vector<Value>> keys(sort_keys != nullptr ? num_rows : 0);

  PropertyGraph::ParallelReadScope read_scope(*ec.graph);
  size_t chunk = RowChunk(plan, num_rows);
  size_t tasks = (num_rows + chunk - 1) / chunk;
  CYPHER_RETURN_NOT_OK(
      RunOrdered(tasks, plan.workers, [&](size_t task) -> Status {
        CancelGate gate(ec.cancel);
        size_t begin = task * chunk;
        size_t end = std::min(num_rows, begin + chunk);
        for (size_t r = begin; r < end; ++r) {
          CYPHER_RETURN_NOT_OK(gate.Check());
          std::vector<Value> row;
          row.reserve(items.size());
          for (const RowEval& item : fast) {
            CYPHER_ASSIGN_OR_RETURN(Value v, item.Eval(r));
            row.push_back(std::move(v));
          }
          if (sort_keys != nullptr) {
            CYPHER_ASSIGN_OR_RETURN(
                keys[r], EvalSortKeys(ec, Bindings(&input, r), items, row,
                                      order_by, nullptr));
          }
          rows[r] = std::move(row);
        }
        return Status::OK();
      }));
  for (size_t r = 0; r < num_rows; ++r) {
    out->AddRow(std::move(rows[r]));
    if (sort_keys != nullptr) sort_keys->push_back(std::move(keys[r]));
  }
  return true;
}

// ---- Parallel partial aggregation ------------------------------------------

namespace {

// Hash-set of values under grouping equivalence, as the sequential DISTINCT
// aggregate uses (evaluator.cc keeps its own private copy of this adapter).
struct ValueHash {
  uint64_t operator()(const Value& v) const { return HashValue(v); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return GroupEquals(a, b);
  }
};
using ValueSet = std::unordered_set<Value, ValueHash, ValueEq>;

/// Aggregates with a partial/merge decomposition. Anything else — avg()
/// (a float sum), aggregates nested inside larger expressions, unknown
/// names — carries kGeneric and is finalized by re-running the sequential
/// evaluator over the group's merged row list.
enum class AggOp { kGeneric, kCountStar, kCount, kSum, kMin, kMax, kCollect };

struct AggSpec {
  AggOp op = AggOp::kGeneric;
  bool distinct = false;
  const Expr* arg = nullptr;  // null for kCountStar / kGeneric
};

AggSpec ClassifyAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kCountStar) {
    return {AggOp::kCountStar, false, nullptr};
  }
  if (expr.kind != ExprKind::kFunction) return {};
  const auto& call = static_cast<const FunctionExpr&>(expr);
  if (!IsAggregateFunctionName(call.name) || call.args.size() != 1) return {};
  AggOp op;
  if (call.name == "count") {
    op = AggOp::kCount;
  } else if (call.name == "sum") {
    op = AggOp::kSum;
  } else if (call.name == "min") {
    op = AggOp::kMin;
  } else if (call.name == "max") {
    op = AggOp::kMax;
  } else if (call.name == "collect") {
    op = AggOp::kCollect;
  } else {
    return {};
  }
  return {op, call.distinct, call.args[0].get()};
}

/// Exact running stats of an integer-sum prefix sequence, wide enough that
/// the partials themselves cannot overflow. The sequential loop errors at
/// the first prefix outside int64 (stepwise __builtin_add_overflow), so two
/// segments merge by composing prefix extrema under the left segment's
/// offset: overflow happened iff some row-granular prefix of the merged
/// sequence escapes int64 — even when later rows bring the total back in
/// range. The empty prefix (0) is included; it is always in range, so it
/// never manufactures an error.
struct SumStats {
  __int128 sum = 0;
  __int128 max_prefix = 0;
  __int128 min_prefix = 0;

  void Add(int64_t v) {
    sum += v;
    if (sum > max_prefix) max_prefix = sum;
    if (sum < min_prefix) min_prefix = sum;
  }
  void Merge(const SumStats& next) {
    max_prefix = std::max(max_prefix, sum + next.max_prefix);
    min_prefix = std::min(min_prefix, sum + next.min_prefix);
    sum += next.sum;
  }
  bool Overflowed() const {
    return max_prefix >
               static_cast<__int128>(std::numeric_limits<int64_t>::max()) ||
           min_prefix <
               static_cast<__int128>(std::numeric_limits<int64_t>::min());
  }
};

/// Partial state of one (group, item) pair within one task's morsel run,
/// merged across tasks in morsel order.
struct Partial {
  int64_t count = 0;          // kCountStar / kCount
  SumStats sum;               // kSum (integers only)
  Value best;                 // kMin / kMax
  bool has_best = false;
  std::vector<Value> values;  // kCollect, and every DISTINCT variant
                              //   (first-occurrence order within the morsel)
  ValueSet seen;              // DISTINCT: local dedup
  /// The fast path met something it cannot decompose exactly — an argument
  /// evaluation error, or a float / non-number in sum() (whose stepwise
  /// int-overflow check is order-entangled with the float path). Finalize
  /// re-runs the sequential evaluator for this group, reproducing its value
  /// or its error verbatim.
  bool fallback = false;
};

Status UpdatePartial(const AggSpec& spec, const RowEval* arg, size_t r,
                     Partial* p) {
  if (spec.op == AggOp::kCountStar) {
    ++p->count;
    return Status::OK();
  }
  if (spec.op == AggOp::kGeneric || p->fallback) return Status::OK();
  Result<Value> rv = arg->Eval(r);
  if (!rv.ok()) {
    // Not a task error: the sequential executor only hits this once group
    // finalization reaches this (group, item) — the generic fallback will
    // re-raise it at exactly that point.
    p->fallback = true;
    return Status::OK();
  }
  Value v = std::move(rv).value();
  if (v.is_null()) return Status::OK();  // every aggregate skips nulls
  if (spec.distinct) {
    if (p->seen.insert(v).second) p->values.push_back(std::move(v));
    return Status::OK();
  }
  switch (spec.op) {
    case AggOp::kCount:
      ++p->count;
      break;
    case AggOp::kCollect:
      p->values.push_back(std::move(v));
      break;
    case AggOp::kSum:
      if (v.is_int()) {
        p->sum.Add(v.AsInt());
      } else {
        p->fallback = true;
      }
      break;
    case AggOp::kMin:
    case AggOp::kMax: {
      if (!p->has_best) {
        p->best = std::move(v);
        p->has_best = true;
      } else {
        int cmp = TotalOrderCompare(v, p->best);
        if ((spec.op == AggOp::kMin && cmp < 0) ||
            (spec.op == AggOp::kMax && cmp > 0)) {
          p->best = std::move(v);
        }
      }
      break;
    }
    case AggOp::kCountStar:
    case AggOp::kGeneric:
      break;  // handled above
  }
  return Status::OK();
}

/// Folds `next` (the later morsel) into `into` (the earlier), preserving
/// sequential row order everywhere order matters.
void MergePartial(const AggSpec& spec, Partial&& next, Partial* into) {
  into->fallback |= next.fallback;
  switch (spec.op) {
    case AggOp::kCountStar:
      into->count += next.count;
      return;
    case AggOp::kGeneric:
      return;
    default:
      break;
  }
  if (spec.distinct) {
    for (Value& v : next.values) {
      if (into->seen.insert(v).second) into->values.push_back(std::move(v));
    }
    return;
  }
  switch (spec.op) {
    case AggOp::kCount:
      into->count += next.count;
      break;
    case AggOp::kCollect:
      into->values.insert(into->values.end(),
                          std::make_move_iterator(next.values.begin()),
                          std::make_move_iterator(next.values.end()));
      break;
    case AggOp::kSum:
      into->sum.Merge(next.sum);
      break;
    case AggOp::kMin:
    case AggOp::kMax:
      if (!into->has_best) {
        into->best = std::move(next.best);
        into->has_best = next.has_best;
      } else if (next.has_best) {
        // `next` holds later rows: it only replaces on a strict win, which
        // is exactly the sequential first-seen tie-break.
        int cmp = TotalOrderCompare(next.best, into->best);
        if ((spec.op == AggOp::kMin && cmp < 0) ||
            (spec.op == AggOp::kMax && cmp > 0)) {
          into->best = std::move(next.best);
        }
      }
      break;
    case AggOp::kCountStar:
    case AggOp::kGeneric:
      break;  // handled above
  }
}

/// The sequential sum() loop (evaluator.cc), replayed over a DISTINCT
/// merged value list: same type checks, same stepwise overflow, same
/// messages.
Result<Value> ReplaySum(const std::vector<Value>& values) {
  bool all_int = true;
  double fsum = 0;
  int64_t isum = 0;
  for (const Value& v : values) {
    if (!v.is_number()) {
      return Status::ExecutionError("sum() expects numeric values");
    }
    if (v.is_int()) {
      if (__builtin_add_overflow(isum, v.AsInt(), &isum)) {
        return Status::ExecutionError("integer overflow in sum()");
      }
    } else {
      all_int = false;
    }
    fsum += v.AsNumber();
  }
  return all_int ? Value::Int(isum) : Value::Float(fsum);
}

/// The sequential min()/max() scan, replayed over a DISTINCT merged list.
Result<Value> ReplayMinMax(const std::vector<Value>& values, bool is_min) {
  if (values.empty()) return Value::Null();
  const Value* best = &values[0];
  for (const Value& v : values) {
    int cmp = TotalOrderCompare(v, *best);
    if ((is_min && cmp < 0) || (!is_min && cmp > 0)) best = &v;
  }
  return *best;
}

Result<Value> FinalizePartial(const AggSpec& spec, Partial&& p) {
  if (spec.distinct) {
    switch (spec.op) {
      case AggOp::kCount:
        return Value::Int(static_cast<int64_t>(p.values.size()));
      case AggOp::kCollect:
        return Value::List(std::move(p.values));
      case AggOp::kSum:
        return ReplaySum(p.values);
      case AggOp::kMin:
      case AggOp::kMax:
        return ReplayMinMax(p.values, spec.op == AggOp::kMin);
      default:
        break;
    }
  }
  switch (spec.op) {
    case AggOp::kCountStar:
    case AggOp::kCount:
      return Value::Int(p.count);
    case AggOp::kCollect:
      return Value::List(std::move(p.values));
    case AggOp::kSum:
      if (p.sum.Overflowed()) {
        return Status::ExecutionError("integer overflow in sum()");
      }
      return Value::Int(static_cast<int64_t>(p.sum.sum));
    case AggOp::kMin:
    case AggOp::kMax:
      if (!p.has_best) return Value::Null();
      return std::move(p.best);
    case AggOp::kGeneric:
      break;
  }
  CYPHER_CHECK(false && "generic aggregate has no partial finalize");
  return Value::Null();
}

/// One task's (or the merged) grouping state: groups in first-occurrence
/// order, each with its key, its member rows (ascending), and one Partial
/// per aggregate item.
struct GroupSet {
  std::vector<std::vector<Value>> keys;
  std::vector<std::vector<size_t>> rows;
  std::vector<std::vector<Partial>> partials;
  std::unordered_map<std::vector<Value>, size_t, ValueVecHash, ValueVecEq>
      index;
};

}  // namespace

Result<bool> TryParallelAggregate(const EvalContext& ec,
                                  const EvalOptions& options,
                                  const Table& input,
                                  const std::vector<ProjItemView>& items,
                                  const std::vector<SortItem>& order_by,
                                  Table* out,
                                  std::vector<std::vector<Value>>* sort_keys) {
  const size_t num_rows = input.num_rows();
  if (options.parallel_workers <= 1 || num_rows < 2 ||
      num_rows < options.parallel_min_cost) {
    return false;
  }
  ParallelPlan plan;
  plan.workers = options.parallel_workers;
  plan.morsel = std::max<size_t>(1, options.parallel_morsel_size);

  // Item classification and shared (immutable) per-row evaluators. Grouping
  // keys are the non-aggregate items, in item order, as ExecProjection does.
  std::vector<AggSpec> specs(items.size());
  std::vector<size_t> key_items;
  std::vector<RowEval> key_eval;
  std::vector<std::unique_ptr<RowEval>> arg_eval(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].has_agg) {
      key_items.push_back(i);
      key_eval.emplace_back(ec, input, *items[i].expr);
      continue;
    }
    specs[i] = ClassifyAggregate(*items[i].expr);
    if (specs[i].arg != nullptr) {
      arg_eval[i] = std::make_unique<RowEval>(ec, input, *specs[i].arg);
    }
  }

  // Phase 1 (parallel): per-morsel grouping with partial aggregates.
  size_t chunk = RowChunk(plan, num_rows);
  size_t tasks = (num_rows + chunk - 1) / chunk;
  std::vector<GroupSet> task_groups(tasks);
  {
    PropertyGraph::ParallelReadScope read_scope(*ec.graph);
    CYPHER_RETURN_NOT_OK(
        RunOrdered(tasks, plan.workers, [&](size_t task) -> Status {
          GroupSet& gs = task_groups[task];
          CancelGate gate(ec.cancel);
          size_t begin = task * chunk;
          size_t end = std::min(num_rows, begin + chunk);
          for (size_t r = begin; r < end; ++r) {
            CYPHER_RETURN_NOT_OK(gate.Check());
            std::vector<Value> key;
            key.reserve(key_items.size());
            for (const RowEval& ke : key_eval) {
              CYPHER_ASSIGN_OR_RETURN(Value v, ke.Eval(r));
              key.push_back(std::move(v));
            }
            auto [it, inserted] = gs.index.try_emplace(key, gs.keys.size());
            if (inserted) {
              gs.keys.push_back(std::move(key));
              gs.rows.emplace_back();
              gs.partials.emplace_back(items.size());
            }
            size_t g = it->second;
            gs.rows[g].push_back(r);
            for (size_t i = 0; i < items.size(); ++i) {
              if (!items[i].has_agg) continue;
              CYPHER_RETURN_NOT_OK(UpdatePartial(specs[i], arg_eval[i].get(),
                                                 r, &gs.partials[g][i]));
            }
          }
          return Status::OK();
        }));
  }

  // Phase 2 (sequential): merge task group sets in morsel order. First
  // occurrence across ordered morsels is first occurrence across rows, so
  // merged group order is exactly the sequential group order.
  GroupSet merged;
  if (key_items.empty()) {
    // The global group exists unconditionally (ExecProjection creates it up
    // front); every task contributed to the same empty key.
    merged.keys.emplace_back();
    merged.rows.emplace_back();
    merged.partials.emplace_back(items.size());
    merged.index.emplace(std::vector<Value>(), 0);
  }
  for (GroupSet& gs : task_groups) {
    for (size_t g = 0; g < gs.keys.size(); ++g) {
      auto [it, inserted] = merged.index.try_emplace(gs.keys[g],
                                                     merged.keys.size());
      if (inserted) {
        merged.keys.push_back(std::move(gs.keys[g]));
        merged.rows.push_back(std::move(gs.rows[g]));
        merged.partials.push_back(std::move(gs.partials[g]));
        continue;
      }
      size_t m = it->second;
      merged.rows[m].insert(merged.rows[m].end(), gs.rows[g].begin(),
                            gs.rows[g].end());
      for (size_t i = 0; i < items.size(); ++i) {
        if (!items[i].has_agg) continue;
        MergePartial(specs[i], std::move(gs.partials[g][i]),
                     &merged.partials[m][i]);
      }
    }
  }

  // Phase 3 (sequential, tiny: one step per group): finalize in group
  // order. Fast partials materialize directly; everything else re-runs the
  // sequential evaluator over the merged row list, so values and errors
  // surface in the exact sequential (group, item) order.
  for (size_t gi = 0; gi < merged.keys.size(); ++gi) {
    const std::vector<size_t>& rows = merged.rows[gi];
    Bindings rep = rows.empty() ? Bindings() : Bindings(&input, rows.front());
    AggregateScope scope{&input, &rows};
    std::vector<Value> row(items.size());
    size_t key_slot = 0;
    for (size_t i = 0; i < items.size(); ++i) {
      if (!items[i].has_agg) {
        row[i] = merged.keys[gi][key_slot++];
      } else if (specs[i].op != AggOp::kGeneric &&
                 !merged.partials[gi][i].fallback) {
        CYPHER_ASSIGN_OR_RETURN(
            row[i], FinalizePartial(specs[i], std::move(merged.partials[gi][i])));
      } else {
        CYPHER_ASSIGN_OR_RETURN(row[i],
                                Evaluate(ec, rep, *items[i].expr, &scope));
      }
    }
    if (sort_keys != nullptr) {
      CYPHER_ASSIGN_OR_RETURN(
          std::vector<Value> keys,
          EvalSortKeys(ec, rep, items, row, order_by, &scope));
      sort_keys->push_back(std::move(keys));
    }
    out->AddRow(std::move(row));
  }
  return true;
}

}  // namespace cypher
