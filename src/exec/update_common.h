#ifndef CYPHER_EXEC_UPDATE_COMMON_H_
#define CYPHER_EXEC_UPDATE_COMMON_H_

#include <string>
#include <utility>
#include <vector>

#include "ast/pattern.h"
#include "common/result.h"
#include "exec/context.h"

namespace cypher {

/// Validates the shape restrictions on updating patterns (the
/// <dir. upd. pat.> of Figure 5 / Figure 10): every relationship pattern
/// must carry exactly one type, must not be variable-length, and — unless
/// `allow_undirected` (legacy MERGE's <upd. pat.>) — must be directed.
Status ValidateUpdatePatterns(const std::vector<PathPattern>& patterns,
                              bool allow_undirected);

/// Evaluates a pattern/property-map assignment `{key: expr, ...}` against
/// the record. Null values are dropped (setting a property to null stores
/// nothing, Section 8 / Example 5); entity and map values are rejected
/// (property graphs store scalars and lists of scalars).
Result<PropertyMap> EvalPatternProps(
    ExecContext* ctx, const Bindings& bindings,
    const std::vector<std::pair<std::string, ExprPtr>>& props);

/// True if `value` may be stored as a property (scalar, or list of
/// storable values).
bool IsStorableProperty(const Value& value);

/// Creates the entities of one path pattern for one record, extending
/// `env` with every variable the pattern binds (CREATE semantics:
/// saturation + creation + binding, Section 8). Shared by CREATE and by
/// legacy MERGE's create branch; undirected relationships (legal only in
/// legacy MERGE patterns) materialize left-to-right.
Status CreatePatternInstance(ExecContext* ctx, Bindings* env,
                             const PathPattern& pattern);

/// The variables of `patterns` that are not yet columns of `table`,
/// deduplicated in syntactic order — the columns an update clause binding
/// these patterns will add.
std::vector<std::string> NewPatternVariables(
    const std::vector<PathPattern>& patterns, const Table& table);

}  // namespace cypher

#endif  // CYPHER_EXEC_UPDATE_COMMON_H_
