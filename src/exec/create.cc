#include "common/check.h"
#include "eval/evaluator.h"
#include "exec/clauses.h"
#include "exec/update_common.h"

namespace cypher {

namespace {

/// Creates (or resolves) the node of one node pattern for one record.
/// `env` carries both the table record and the variables bound so far in
/// this clause (the paper's saturation temporaries behave the same way but
/// never become table columns because anonymous patterns have no name).
Result<NodeId> ResolveCreateNode(ExecContext* ctx, Bindings* env,
                                 const NodePattern& pattern) {
  if (!pattern.variable.empty()) {
    if (std::optional<Value> bound = env->Lookup(pattern.variable)) {
      if (!pattern.labels.empty() || !pattern.properties.empty()) {
        return Status::SemanticError(
            "variable '" + pattern.variable +
            "' is already bound; it cannot be redeclared with labels or "
            "properties");
      }
      if (bound->is_null()) {
        return Status::ExecutionError("cannot create a relationship to null "
                                      "(variable '" +
                                      pattern.variable + "')");
      }
      if (!bound->is_node()) {
        return Status::ExecutionError(
            "variable '" + pattern.variable + "' is bound to " +
            ValueTypeName(bound->type()) + ", expected a node");
      }
      NodeId id = bound->AsNode();
      if (!ctx->graph->IsNodeAlive(id)) {
        return Status::ExecutionError("variable '" + pattern.variable +
                                      "' refers to a deleted node");
      }
      return id;
    }
  }
  std::vector<Symbol> labels;
  labels.reserve(pattern.labels.size());
  for (const std::string& label : pattern.labels) {
    labels.push_back(ctx->graph->InternLabel(label));
  }
  CYPHER_ASSIGN_OR_RETURN(PropertyMap props,
                          EvalPatternProps(ctx, *env, pattern.properties));
  NodeId id = ctx->graph->CreateNode(std::move(labels), std::move(props));
  ++ctx->stats.nodes_created;
  if (!pattern.variable.empty()) {
    env->Push(pattern.variable, Value::Node(id));
  }
  return id;
}

}  // namespace

Status CreatePatternInstance(ExecContext* ctx, Bindings* env,
                             const PathPattern& pattern) {
  PathValue path;
  CYPHER_ASSIGN_OR_RETURN(NodeId cur, ResolveCreateNode(ctx, env, pattern.start));
  path.nodes.push_back(cur);
  for (const auto& [rel_pattern, node_pattern] : pattern.steps) {
    if (!rel_pattern.variable.empty() && env->IsBound(rel_pattern.variable)) {
      return Status::SemanticError("relationship variable '" +
                                   rel_pattern.variable +
                                   "' is already bound");
    }
    CYPHER_ASSIGN_OR_RETURN(NodeId next,
                            ResolveCreateNode(ctx, env, node_pattern));
    CYPHER_ASSIGN_OR_RETURN(
        PropertyMap props,
        EvalPatternProps(ctx, *env, rel_pattern.properties));
    Symbol type = ctx->graph->InternType(rel_pattern.types.front());
    // An undirected arrow only reaches here via legacy MERGE's create part;
    // it materializes left-to-right (the nondeterminism Figure 10's syntax
    // change removes).
    NodeId src = cur;
    NodeId tgt = next;
    if (rel_pattern.direction == RelDirection::kRightToLeft) std::swap(src, tgt);
    CYPHER_ASSIGN_OR_RETURN(RelId rel,
                            ctx->graph->CreateRel(src, tgt, type,
                                                  std::move(props)));
    ++ctx->stats.rels_created;
    if (!rel_pattern.variable.empty()) {
      env->Push(rel_pattern.variable, Value::Rel(rel));
    }
    path.rels.push_back(rel);
    path.nodes.push_back(next);
    cur = next;
  }
  if (!pattern.path_variable.empty()) {
    if (env->IsBound(pattern.path_variable)) {
      return Status::SemanticError("path variable '" + pattern.path_variable +
                                   "' is already bound");
    }
    env->Push(pattern.path_variable, Value::Path(std::move(path)));
  }
  return Status::OK();
}

Status ExecCreate(ExecContext* ctx, const CreateClause& clause, Table* table) {
  CYPHER_RETURN_NOT_OK(
      ValidateUpdatePatterns(clause.patterns, /*allow_undirected=*/false));
  std::vector<std::string> new_vars = NewPatternVariables(clause.patterns, *table);
  Table out = Table::WithColumns(table->columns());
  for (const std::string& var : new_vars) out.AddColumn(var);
  // CREATE never reads the graph beyond bound endpoints, so record order
  // cannot matter; both semantics modes share this executor.
  for (size_t r = 0; r < table->num_rows(); ++r) {
    Bindings env(table, r);
    for (const PathPattern& pattern : clause.patterns) {
      CYPHER_RETURN_NOT_OK(CreatePatternInstance(ctx, &env, pattern));
    }
    std::vector<Value> row = table->row(r);
    for (const std::string& var : new_vars) {
      std::optional<Value> v = env.Lookup(var);
      CYPHER_CHECK(v.has_value() && "CREATE did not bind a pattern variable");
      row.push_back(*std::move(v));
    }
    out.AddRow(std::move(row));
  }
  *table = std::move(out);
  return Status::OK();
}

}  // namespace cypher
