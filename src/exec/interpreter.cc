#include "exec/interpreter.h"

#include <unordered_set>

#include "ast/printer.h"
#include "common/check.h"
#include "common/read_pin.h"
#include "exec/clauses.h"
#include "exec/context.h"
#include "exec/parallel.h"
#include "match/compiled_pattern.h"
#include "vm/normalize.h"

namespace cypher {

std::string UpdateStats::ToString() const {
  std::string out;
  auto add = [&out](uint64_t n, const char* what) {
    if (n == 0) return;
    if (!out.empty()) out += ", ";
    out += std::to_string(n);
    out += " ";
    out += what;
  };
  add(nodes_created, "nodes created");
  add(rels_created, "relationships created");
  add(properties_set, "properties set");
  add(labels_added, "labels added");
  add(labels_removed, "labels removed");
  add(nodes_deleted, "nodes deleted");
  add(rels_deleted, "relationships deleted");
  if (out.empty()) out = "no changes";
  return out;
}

/// The Cypher 9 clause-ordering rule of Figure 2: reading clauses may not
/// follow an update clause without an intervening WITH (Section 4.4).
Status CheckStrictCypher9Ordering(const SingleQuery& part) {
  bool updates_pending = false;
  for (const ClausePtr& clause : part.clauses) {
    if (IsUpdateClause(*clause)) {
      updates_pending = true;
      continue;
    }
    switch (clause->kind) {
      case ClauseKind::kWith:
        updates_pending = false;
        break;
      case ClauseKind::kMatch:
      case ClauseKind::kUnwind:
        if (updates_pending) {
          return Status::SemanticError(
              "Cypher 9 syntax requires WITH between an updating clause and "
              "a subsequent reading clause");
        }
        break;
      default:
        break;
    }
  }
  return Status::OK();
}

const char* ClauseDisplayName(const Clause& clause) {
  switch (clause.kind) {
    case ClauseKind::kMatch:
      return static_cast<const MatchClause&>(clause).optional
                 ? "OPTIONAL MATCH"
                 : "MATCH";
    case ClauseKind::kUnwind:
      return "UNWIND";
    case ClauseKind::kWith:
      return "WITH";
    case ClauseKind::kReturn:
      return "RETURN";
    case ClauseKind::kCreate:
      return "CREATE";
    case ClauseKind::kSet:
      return "SET";
    case ClauseKind::kRemove:
      return "REMOVE";
    case ClauseKind::kDelete:
      return static_cast<const DeleteClause&>(clause).detach ? "DETACH DELETE"
                                                             : "DELETE";
    case ClauseKind::kMerge:
      switch (static_cast<const MergeClause&>(clause).form) {
        case MergeForm::kAll:
          return "MERGE ALL";
        case MergeForm::kSame:
          return "MERGE SAME";
        case MergeForm::kLegacy:
          return "MERGE";
      }
      return "MERGE";
    case ClauseKind::kForeach:
      return "FOREACH";
    case ClauseKind::kCreateIndex:
      return static_cast<const CreateIndexClause&>(clause).drop
                 ? "DROP INDEX"
                 : "CREATE INDEX";
    case ClauseKind::kConstraint:
      return static_cast<const ConstraintClause&>(clause).drop
                 ? "DROP CONSTRAINT"
                 : "CREATE CONSTRAINT";
    case ClauseKind::kCallSubquery:
      return "CALL {...}";
  }
  return "?";
}

namespace {

/// Per-clause cardinality record for PROFILE.
struct ProfileRow {
  std::string clause;
  size_t rows_out;
};

Status RunSingleQuery(ExecContext* ctx, const SingleQuery& part, Table* table,
                      bool* has_return, std::vector<ProfileRow>* profile) {
  *has_return = false;
  *table = Table::Unit();
  for (const ClausePtr& clause : part.clauses) {
    // Watchdog poll at clause granularity; the matcher and the parallel
    // loops poll the same token at finer grain during long enumerations.
    CYPHER_RETURN_NOT_OK(ctx->options.cancel.Check());
    CYPHER_RETURN_NOT_OK(ExecClause(ctx, *clause, table));
    if (ctx->options.max_rows != 0 &&
        table->num_rows() > ctx->options.max_rows) {
      return Status::ExecutionError(
          "driving table exceeded the configured row limit (" +
          std::to_string(ctx->options.max_rows) + " records) after " +
          ClauseDisplayName(*clause));
    }
    if (clause->kind == ClauseKind::kReturn) *has_return = true;
    if (profile != nullptr) {
      profile->push_back({ToCypher(*clause), table->num_rows()});
    }
  }
  if (!*has_return) *table = Table();
  return Status::OK();
}

/// EXPLAIN: a plan description, no execution. MATCH and MERGE clauses show
/// the access path the compiled pipeline selects (see DescribeMatchPlan),
/// computed against the variables earlier clauses would have bound.
QueryResult BuildExplainPlan(const PropertyGraph& graph, const Query& query,
                             const ValueMap& params,
                             const EvalOptions& options) {
  QueryResult result;
  result.columns = {"step", "clause", "details"};
  EvalContext ec{&graph, &params, options.match_mode};
  int step = 0;
  for (size_t p = 0; p < query.parts.size(); ++p) {
    if (p > 0) {
      result.rows.push_back(
          {Value::Int(step++),
           Value::String(query.union_all[p - 1] ? "UNION ALL" : "UNION"),
           Value::String("combine branch output tables")});
    }
    // Variables in scope at each clause; UNION branches start fresh.
    std::unordered_set<std::string> bound;
    auto bind_patterns = [&bound](const std::vector<PathPattern>& patterns) {
      for (const PathPattern& pattern : patterns) {
        for (const std::string& var : PatternVariables(pattern)) {
          bound.insert(var);
        }
      }
    };
    for (const ClausePtr& clause : query.parts[p].clauses) {
      std::string details = ToCypher(*clause);
      switch (clause->kind) {
        case ClauseKind::kMatch: {
          const auto& match = static_cast<const MatchClause&>(*clause);
          CompiledMatch compiled =
              CompileMatchForExplain(ec, bound, match.patterns);
          details += "  [" + DescribeMatchPlan(graph, compiled) + "]";
          std::string par = DescribeParallelMatch(options, compiled);
          if (!par.empty()) details += "  [" + par + "]";
          bind_patterns(match.patterns);
          break;
        }
        case ClauseKind::kMerge: {
          const auto& merge = static_cast<const MergeClause&>(*clause);
          CompiledMatch compiled =
              CompileMatchForExplain(ec, bound, merge.patterns);
          details += "  [match phase " + DescribeMatchPlan(graph, compiled) +
                     "]";
          // Only the revised variants fan out their match phase; legacy
          // MERGE reads its own writes record by record.
          if (options.semantics == SemanticsMode::kRevised) {
            std::string par = DescribeParallelMatch(options, compiled);
            if (!par.empty()) details += "  [" + par + "]";
          }
          bind_patterns(merge.patterns);
          break;
        }
        case ClauseKind::kCreate:
          bind_patterns(static_cast<const CreateClause&>(*clause).patterns);
          break;
        case ClauseKind::kUnwind:
          bound.insert(static_cast<const UnwindClause&>(*clause).variable);
          break;
        case ClauseKind::kWith:
        case ClauseKind::kReturn: {
          // A projection replaces the scope with its aliases.
          const ProjectionBody& body =
              clause->kind == ClauseKind::kWith
                  ? static_cast<const WithClause&>(*clause).body
                  : static_cast<const ReturnClause&>(*clause).body;
          if (!body.include_existing) bound.clear();  // `WITH *` keeps scope
          for (const ReturnItem& item : body.items) bound.insert(item.alias);
          break;
        }
        default:
          break;  // SET/REMOVE/DELETE/FOREACH/DDL bind nothing
      }
      result.rows.push_back({Value::Int(step++),
                             Value::String(ClauseDisplayName(*clause)),
                             Value::String(details)});
    }
  }
  result.rows.push_back(
      {Value::Int(step), Value::String("SEMANTICS"),
       Value::String(options.semantics == SemanticsMode::kLegacy
                         ? "legacy (Cypher 9), record-at-a-time updates"
                         : "revised (Sections 7-8), atomic updates")});
  return result;
}

}  // namespace

Result<QueryResult> ExecuteQuery(PropertyGraph* graph, const Query& query,
                                 const ValueMap& params,
                                 const EvalOptions& options,
                                 const CommitHook& commit_hook) {
  CYPHER_CHECK(!query.parts.empty());
  // Mixing UNION and UNION ALL is ambiguous; reject like Neo4j does.
  if (!query.union_all.empty()) {
    bool first = query.union_all.front();
    for (bool all : query.union_all) {
      if (all != first) {
        return Status::SemanticError(
            "cannot mix UNION and UNION ALL in one statement");
      }
    }
  }

  if (query.mode == QueryMode::kExplain) {
    return BuildExplainPlan(*graph, query, params, options);
  }

  ExecContext ctx(graph, &params, options);
  std::vector<ProfileRow> profile;
  std::vector<ProfileRow>* profile_ptr =
      query.mode == QueryMode::kProfile ? &profile : nullptr;

  Table combined;
  bool combined_has_return = false;
  auto run_parts = [&]() -> Status {
    for (size_t p = 0; p < query.parts.size(); ++p) {
      const SingleQuery& part = query.parts[p];
      if (options.semantics == SemanticsMode::kLegacy &&
          options.strict_cypher9_syntax) {
        CYPHER_RETURN_NOT_OK(CheckStrictCypher9Ordering(part));
      }
      Table table;
      bool has_return = false;
      CYPHER_RETURN_NOT_OK(
          RunSingleQuery(&ctx, part, &table, &has_return, profile_ptr));
      if (p == 0) {
        combined = std::move(table);
        combined_has_return = has_return;
        continue;
      }
      if (has_return != combined_has_return) {
        return Status::SemanticError(
            "all UNION branches must RETURN, or none may");
      }
      if (has_return) {
        CYPHER_ASSIGN_OR_RETURN(combined, Table::BagUnion(combined, table));
      }
    }
    if (!query.union_all.empty() && !query.union_all.front() &&
        combined_has_return) {
      combined = combined.Distinct();
    }
    return Status::OK();
  };

  auto build_result = [&]() -> QueryResult {
    QueryResult result;
    if (query.mode == QueryMode::kProfile) {
      // PROFILE commits the statement but reports per-clause cardinalities
      // instead of the query output.
      result.columns = {"step", "clause", "rows_out"};
      for (size_t i = 0; i < profile.size(); ++i) {
        result.rows.push_back({Value::Int(static_cast<int64_t>(i)),
                               Value::String(profile[i].clause),
                               Value::Int(static_cast<int64_t>(
                                   profile[i].rows_out))});
      }
    } else {
      result.columns = combined.columns();
      result.rows = combined.rows();
    }
    result.stats = ctx.stats;
    return result;
  };

  // Snapshot read session: execute lock-free against the pinned committed
  // epoch, concurrently with the writer. Pure reads touch neither journal
  // nor indexes nor the WAL, so the whole statement lifecycle collapses to
  // "install the pin thread-locally and enumerate".
  if (options.read_pin != nullptr) {
    if (!IsReadOnlyQuery(query)) {
      return Status::ExecutionError(
          "snapshot read session is read-only: update and DDL statements "
          "must run on the writer database");
    }
    ScopedReadPin scope(*options.read_pin);
    CYPHER_RETURN_NOT_OK(run_parts());
    return build_result();
  }

  PropertyGraph::JournalMark mark = graph->BeginJournal();
  auto fail = [&](Status status) -> Status {
    graph->RollbackTo(mark);
    return status;
  };

  if (Status st = run_parts(); !st.ok()) return fail(st);

  // Legacy mode defers the dangling-relationship check to statement end
  // (Neo4j's commit-time validation; Section 4.2).
  if (options.semantics == SemanticsMode::kLegacy &&
      graph->HasDanglingRels()) {
    return fail(Status::ExecutionError(
        "cannot commit: deleting nodes left relationships without "
        "endpoints (delete the relationships too, or use DETACH DELETE)"));
  }

  // Uniqueness constraints are enforced at statement granularity: a
  // violating statement rolls back in full (same atomicity story as the
  // revised SET/DELETE).
  if (Status st = graph->ValidateUniqueConstraints(); !st.ok()) {
    return fail(st);
  }

  // Last exit before the statement becomes visible: a durable session logs
  // it here, and a logging failure rolls back — the log never runs behind
  // the committed state.
  if (commit_hook != nullptr) {
    if (Status st = commit_hook(); !st.ok()) return fail(st);
  }

  graph->CommitTo(mark);
  return build_result();
}

}  // namespace cypher
