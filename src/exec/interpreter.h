#ifndef CYPHER_EXEC_INTERPRETER_H_
#define CYPHER_EXEC_INTERPRETER_H_

#include <functional>
#include <string>
#include <vector>

#include "ast/query.h"
#include "common/result.h"
#include "exec/options.h"
#include "exec/stats.h"
#include "graph/graph.h"
#include "table/table.h"
#include "value/value.h"

namespace cypher {

/// The observable outcome of one statement: the output table (empty for
/// update-only statements) and the mutation summary.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  UpdateStats stats;

  size_t num_rows() const { return rows.size(); }
};

/// Runs after a statement passes every end-of-statement validation but
/// before its journal commits. A durable session logs the statement here
/// (the write-ahead property: a statement reaches the log strictly before
/// it becomes visible as committed); a non-OK return rolls the statement
/// back exactly like a validation failure.
using CommitHook = std::function<Status()>;

/// Executes a parsed statement: output(Q, G) of Section 8.
///
/// The graph mutates in place on success. On any error the statement's
/// mutations are rolled back via the graph's undo journal, so a failed
/// statement is a no-op — including legacy-mode statements that fail the
/// end-of-statement dangling-relationship check.
Result<QueryResult> ExecuteQuery(PropertyGraph* graph, const Query& query,
                                 const ValueMap& params,
                                 const EvalOptions& options,
                                 const CommitHook& commit_hook = nullptr);

/// The Cypher 9 clause-ordering rule of Figure 2 (Section 4.4): reading
/// clauses may not follow an updating clause without an intervening WITH.
/// Shared with the bytecode VM, which enforces the same rule per part.
Status CheckStrictCypher9Ordering(const SingleQuery& part);

/// Display name of a clause for error messages and plan rows
/// ("OPTIONAL MATCH", "MERGE ALL", "CALL {...}", ...).
const char* ClauseDisplayName(const Clause& clause);

}  // namespace cypher

#endif  // CYPHER_EXEC_INTERPRETER_H_
