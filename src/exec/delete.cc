#include <unordered_set>

#include "eval/evaluator.h"
#include "exec/clauses.h"

namespace cypher {

namespace {

// ---- Legacy (Cypher 9): immediate per-record deletion -----------------------

Status DeleteValueLegacy(ExecContext* ctx, const Value& value, bool detach) {
  PropertyGraph& graph = *ctx->graph;
  if (value.is_null()) return Status::OK();
  if (value.is_rel()) {
    if (graph.IsRelAlive(value.AsRel())) {
      graph.DeleteRel(value.AsRel());
      ++ctx->stats.rels_deleted;
    }
    return Status::OK();
  }
  if (value.is_node()) {
    NodeId id = value.AsNode();
    if (!graph.IsNodeAlive(id)) return Status::OK();
    if (detach) {
      // Materialized copies on purpose: DeleteRel unlinks from the very
      // adjacency lists being iterated, so the zero-copy ForEach walkers
      // cannot be used here.
      for (RelId r : graph.OutRels(id)) {
        graph.DeleteRel(r);
        ++ctx->stats.rels_deleted;
      }
      for (RelId r : graph.InRels(id)) {
        graph.DeleteRel(r);
        ++ctx->stats.rels_deleted;
      }
    }
    // The legacy anomaly: the node dies immediately even when relationships
    // remain attached; the graph is temporarily illegal (Section 4.2) and
    // only a statement-end check catches it.
    graph.DeleteNodeForce(id);
    ++ctx->stats.nodes_deleted;
    return Status::OK();
  }
  if (value.is_path()) {
    for (RelId r : value.AsPath().rels) {
      if (graph.IsRelAlive(r)) {
        graph.DeleteRel(r);
        ++ctx->stats.rels_deleted;
      }
    }
    for (NodeId n : value.AsPath().nodes) {
      CYPHER_RETURN_NOT_OK(DeleteValueLegacy(ctx, Value::Node(n), detach));
    }
    return Status::OK();
  }
  return Status::ExecutionError(
      std::string("DELETE expects a node, relationship or path, got ") +
      ValueTypeName(value.type()));
}

Status ExecDeleteLegacy(ExecContext* ctx, const DeleteClause& clause,
                        Table* table) {
  EvalContext ec = ctx->Eval();
  for (size_t r : ctx->LegacyScanOrder(table->num_rows())) {
    Bindings bindings(table, r);
    for (const ExprPtr& expr : clause.exprs) {
      CYPHER_ASSIGN_OR_RETURN(Value value, Evaluate(ec, bindings, *expr));
      CYPHER_RETURN_NOT_OK(DeleteValueLegacy(ctx, value, clause.detach));
    }
  }
  return Status::OK();
}

// ---- Revised (Section 8): collect, validate, apply, null-substitute --------

struct DeleteSet {
  std::unordered_set<uint32_t> nodes;
  std::unordered_set<uint32_t> rels;
};

Status CollectValue(const PropertyGraph& graph, const Value& value,
                    DeleteSet* out) {
  if (value.is_null()) return Status::OK();
  if (value.is_node()) {
    if (graph.IsNodeAlive(value.AsNode())) out->nodes.insert(value.AsNode().value);
    return Status::OK();
  }
  if (value.is_rel()) {
    if (graph.IsRelAlive(value.AsRel())) out->rels.insert(value.AsRel().value);
    return Status::OK();
  }
  if (value.is_path()) {
    for (NodeId n : value.AsPath().nodes) {
      if (graph.IsNodeAlive(n)) out->nodes.insert(n.value);
    }
    for (RelId r : value.AsPath().rels) {
      if (graph.IsRelAlive(r)) out->rels.insert(r.value);
    }
    return Status::OK();
  }
  return Status::ExecutionError(
      std::string("DELETE expects a node, relationship or path, got ") +
      ValueTypeName(value.type()));
}

/// Rewrites a value, replacing references to deleted entities by null
/// ("any reference to a deleted entity in the driving table is replaced by
/// a null", Section 7). A path touching any deleted entity becomes null
/// wholesale; lists are scrubbed elementwise.
Value ScrubValue(const Value& value, const DeleteSet& deleted) {
  switch (value.type()) {
    case ValueType::kNode:
      return deleted.nodes.count(value.AsNode().value) ? Value::Null() : value;
    case ValueType::kRel:
      return deleted.rels.count(value.AsRel().value) ? Value::Null() : value;
    case ValueType::kPath: {
      for (NodeId n : value.AsPath().nodes) {
        if (deleted.nodes.count(n.value)) return Value::Null();
      }
      for (RelId r : value.AsPath().rels) {
        if (deleted.rels.count(r.value)) return Value::Null();
      }
      return value;
    }
    case ValueType::kList: {
      ValueList out;
      out.reserve(value.AsList().size());
      for (const Value& v : value.AsList()) {
        out.push_back(ScrubValue(v, deleted));
      }
      return Value::List(std::move(out));
    }
    case ValueType::kMap: {
      ValueMap out;
      for (const auto& [key, v] : value.AsMap()) {
        out.emplace(key, ScrubValue(v, deleted));
      }
      return Value::Map(std::move(out));
    }
    default:
      return value;
  }
}

Status ExecDeleteRevised(ExecContext* ctx, const DeleteClause& clause,
                         Table* table) {
  EvalContext ec = ctx->Eval();
  PropertyGraph& graph = *ctx->graph;
  DeleteSet to_delete;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    Bindings bindings(table, r);
    for (const ExprPtr& expr : clause.exprs) {
      CYPHER_ASSIGN_OR_RETURN(Value value, Evaluate(ec, bindings, *expr));
      CYPHER_RETURN_NOT_OK(CollectValue(graph, value, &to_delete));
    }
  }
  if (clause.detach) {
    // The graph is not mutated until the apply step below, so the incident
    // relationships can be walked in place — no materialized copies.
    for (uint32_t n : to_delete.nodes) {
      auto collect = [&to_delete](RelId r) {
        to_delete.rels.insert(r.value);
        return true;
      };
      graph.ForEachOutRel(NodeId(n), collect);
      graph.ForEachInRel(NodeId(n), collect);
    }
  } else {
    // Deleting these nodes must not leave dangling relationships: every
    // incident relationship has to be deleted in the same clause.
    for (uint32_t n : to_delete.nodes) {
      bool dangling = false;
      auto check = [&to_delete, &dangling](RelId r) {
        if (!to_delete.rels.count(r.value)) {
          dangling = true;
          return false;  // stop: one survivor is enough to reject
        }
        return true;
      };
      graph.ForEachOutRel(NodeId(n), check);
      if (!dangling) graph.ForEachInRel(NodeId(n), check);
      if (dangling) {
        return Status::ExecutionError(
            "cannot DELETE a node that still has relationships; delete "
            "them in the same clause or use DETACH DELETE");
      }
    }
  }
  for (uint32_t r : to_delete.rels) {
    graph.DeleteRel(RelId(r));
    ++ctx->stats.rels_deleted;
  }
  for (uint32_t n : to_delete.nodes) {
    graph.DeleteNode(NodeId(n));
    ++ctx->stats.nodes_deleted;
  }
  // Null-substitute references to deleted entities throughout the table.
  if (!to_delete.nodes.empty() || !to_delete.rels.empty()) {
    for (size_t r = 0; r < table->num_rows(); ++r) {
      std::vector<Value>& row = table->mutable_row(r);
      for (Value& cell : row) cell = ScrubValue(cell, to_delete);
    }
  }
  return Status::OK();
}

}  // namespace

Status ExecDelete(ExecContext* ctx, const DeleteClause& clause, Table* table) {
  if (ctx->options.semantics == SemanticsMode::kLegacy) {
    return ExecDeleteLegacy(ctx, clause, table);
  }
  return ExecDeleteRevised(ctx, clause, table);
}

}  // namespace cypher
