#include "exec/clauses.h"

namespace cypher {

Status ExecCallSubquery(ExecContext* ctx, const CallSubqueryClause& clause,
                        Table* table) {
  bool has_return = clause.body.back()->kind == ClauseKind::kReturn;
  // Without a RETURN the subquery is a per-record side effect and the
  // driving table passes through unchanged.
  Table out = Table::WithColumns(table->columns());
  bool out_extended = false;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    // The subquery is correlated: it starts from a single-record table
    // carrying the outer record's bindings.
    Table inner = Table::WithColumns(table->columns());
    inner.AddRow(table->row(r));
    for (const ClausePtr& clause_ptr : clause.body) {
      CYPHER_RETURN_NOT_OK(ExecClause(ctx, *clause_ptr, &inner));
    }
    if (!has_return) {
      out.AddRow(table->row(r));
      continue;
    }
    if (!out_extended) {
      for (const std::string& column : inner.columns()) {
        if (out.HasColumn(column)) {
          return Status::SemanticError(
              "subquery RETURN alias '" + column +
              "' collides with a variable already in scope");
        }
        out.AddColumn(column);
      }
      out_extended = true;
    }
    for (size_t ir = 0; ir < inner.num_rows(); ++ir) {
      std::vector<Value> row = table->row(r);
      for (const Value& cell : inner.row(ir)) row.push_back(cell);
      out.AddRow(std::move(row));
    }
  }
  *table = std::move(out);
  return Status::OK();
}

}  // namespace cypher
