#include "replication/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "storage/wal.h"

namespace cypher::replication {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

Status Errno(const std::string& what) {
  return Status::Aborted(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Fills a sockaddr for the endpoint. TCP resolution is numeric-only plus
/// "localhost" — replication peers are addressed by IP; pulling in a DNS
/// resolver for this would be all liability.
Status FillAddr(const Endpoint& ep, sockaddr_storage* storage,
                socklen_t* len) {
  std::memset(storage, 0, sizeof(*storage));
  if (ep.kind == Endpoint::Kind::kTcp) {
    auto* addr = reinterpret_cast<sockaddr_in*>(storage);
    addr->sin_family = AF_INET;
    addr->sin_port = htons(static_cast<uint16_t>(ep.port));
    std::string host = ep.host;
    if (host.empty() || host == "localhost") host = "127.0.0.1";
    if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
      return Status::InvalidArgument("unresolvable tcp host: " + ep.host);
    }
    *len = sizeof(sockaddr_in);
    return Status::OK();
  }
  auto* addr = reinterpret_cast<sockaddr_un*>(storage);
  addr->sun_family = AF_UNIX;
  if (ep.path.size() + 1 > sizeof(addr->sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + ep.path);
  }
  std::memcpy(addr->sun_path, ep.path.c_str(), ep.path.size() + 1);
  *len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                ep.path.size() + 1);
  return Status::OK();
}

}  // namespace

// ---- Endpoint ---------------------------------------------------------------

Endpoint Endpoint::Tcp(std::string host, int port) {
  Endpoint ep;
  ep.kind = Kind::kTcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

Endpoint Endpoint::Unix(std::string path) {
  Endpoint ep;
  ep.kind = Kind::kUnix;
  ep.path = std::move(path);
  return ep;
}

Result<Endpoint> Endpoint::Parse(std::string_view text) {
  if (text.rfind("unix:", 0) == 0) {
    std::string path(text.substr(5));
    if (path.empty()) {
      return Status::InvalidArgument("empty unix socket path");
    }
    return Unix(std::move(path));
  }
  if (text.rfind("tcp:", 0) == 0) {
    std::string_view rest = text.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon + 1 == rest.size()) {
      return Status::InvalidArgument(
          "tcp endpoint needs host:port, got: " + std::string(text));
    }
    int port = 0;
    for (char c : rest.substr(colon + 1)) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad tcp port in: " + std::string(text));
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("tcp port out of range: " +
                                       std::string(text));
      }
    }
    return Tcp(std::string(rest.substr(0, colon)), port);
  }
  return Status::InvalidArgument(
      "endpoint must start with tcp: or unix:, got: " + std::string(text));
}

std::string Endpoint::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- SocketTransport (follower client) --------------------------------------

SocketTransport::SocketTransport(Endpoint endpoint, SocketOptions options)
    : endpoint_(std::move(endpoint)), options_(options) {
  uint64_t seed = options_.jitter_seed != 0
                      ? options_.jitter_seed
                      : std::hash<std::string>{}(endpoint_.ToString());
  rng_.seed(seed);
}

SocketTransport::~SocketTransport() { Close(); }

void SocketTransport::SetHelloSource(
    std::function<std::pair<uint64_t, uint64_t>()> source) {
  std::lock_guard<std::mutex> lock(mu_);
  hello_source_ = std::move(source);
}

void SocketTransport::Pump() {
  std::lock_guard<std::mutex> lock(mu_);
  PumpLocked(SteadyNowMs());
}

void SocketTransport::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  state_ = State::kClosed;
}

void SocketTransport::TestSetPaused(bool paused) {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = paused;
}

void SocketTransport::PumpLocked(int64_t now) {
  if (state_ == State::kClosed || paused_) return;
  switch (state_) {
    case State::kIdle:
      StartConnectLocked(now);
      break;
    case State::kBackoff:
      if (now >= next_attempt_ms_) StartConnectLocked(now);
      break;
    case State::kConnecting: {
      pollfd pfd{fd_, POLLOUT, 0};
      int ready = ::poll(&pfd, 1, 0);
      if (ready > 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
          DropLocked(now, "connect failed");
        } else {
          OnConnectedLocked(now);
        }
      } else if (now - connect_started_ms_ > options_.connect_timeout_ms) {
        DropLocked(now, "connect timed out");
      }
      break;
    }
    case State::kConnected:
      ReadLocked(now);
      if (state_ != State::kConnected) break;  // read dropped the link
      if (now - last_beat_ms_ >= options_.heartbeat_interval_ms) {
        outbuf_ += EncodeHeartbeat(static_cast<uint64_t>(now));
        last_beat_ms_ = now;
      }
      WriteLocked(now);
      if (state_ != State::kConnected) break;
      if (last_heard_ms_ >= 0 &&
          now - last_heard_ms_ > options_.peer_deadline_ms) {
        DropLocked(now, "peer deadline");
      }
      break;
    case State::kClosed:
      break;  // unreachable (early return above)
  }
}

void SocketTransport::StartConnectLocked(int64_t now) {
  sockaddr_storage addr;
  socklen_t addr_len = 0;
  if (!FillAddr(endpoint_, &addr, &addr_len).ok()) {
    // A malformed endpoint never becomes connectable; park the transport.
    state_ = State::kClosed;
    return;
  }
  int af = endpoint_.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  int fd = ::socket(af, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0 || !SetNonBlocking(fd).ok()) {
    if (fd >= 0) ::close(fd);
    DropLocked(now, "socket()");
    return;
  }
  fd_ = fd;
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), addr_len);
  if (rc == 0) {
    OnConnectedLocked(now);
    return;
  }
  if (errno == EINPROGRESS || errno == EAGAIN || errno == EINTR) {
    state_ = State::kConnecting;
    connect_started_ms_ = now;
    return;
  }
  DropLocked(now, "connect()");
}

void SocketTransport::OnConnectedLocked(int64_t now) {
  if (endpoint_.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  decoder_ = WireDecoder();
  outbuf_.clear();
  uint64_t token = 0;
  uint64_t lsn = 0;
  if (hello_source_) {
    auto [t, l] = hello_source_();
    token = t;
    lsn = l;
  }
  // Hello first on every connection: who this follower is and where its
  // applied stream stands. The leader resumes (or re-bootstraps) from that.
  outbuf_ = EncodeHello(token, lsn);
  state_ = State::kConnected;
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  backoff_ms_ = 0;  // a successful dial resets the backoff ladder
  last_heard_ms_ = now;
  last_beat_ms_ = now;
  WriteLocked(now);
}

void SocketTransport::DropLocked(int64_t now, const char* /*why*/) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = WireDecoder();
  outbuf_.clear();
  if (state_ == State::kClosed) return;
  state_ = State::kBackoff;
  // Exponential backoff, capped, half-jittered: wait/2 fixed plus a uniform
  // draw over the other half, so repeated failures spread out but never
  // wait longer than the cap.
  backoff_ms_ = backoff_ms_ == 0
                    ? options_.backoff_initial_ms
                    : std::min(backoff_ms_ * 2, options_.backoff_max_ms);
  int64_t wait = backoff_ms_ / 2 +
                 static_cast<int64_t>(rng_() %
                                      static_cast<uint64_t>(backoff_ms_ / 2 + 1));
  next_attempt_ms_ = now + wait;
}

void SocketTransport::ReadLocked(int64_t now) {
  char buf[kReadChunk];
  while (true) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      DropLocked(now, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    DropLocked(now, "recv()");
    return;
  }
  WireMessage msg;
  while (true) {
    Result<bool> next = decoder_.Next(&msg);
    if (!next.ok()) {
      // Structural damage: the byte stream desynchronized. Tear down and
      // let reconnect + hello/resend re-establish a clean stream.
      DropLocked(now, "stream desync");
      return;
    }
    if (!*next) break;
    last_heard_ms_ = now;
    switch (msg.kind) {
      case WireKind::kData:
        inbox_.push_back(std::move(msg.data));
        break;
      case WireKind::kHeartbeat:
        break;  // its arrival already fed the deadline
      case WireKind::kHello:
      case WireKind::kControl:
        DropLocked(now, "unexpected message kind");  // leader-bound kinds
        return;
    }
  }
}

void SocketTransport::WriteLocked(int64_t now) {
  size_t written = 0;
  while (written < outbuf_.size()) {
    ssize_t n = ::send(fd_, outbuf_.data() + written, outbuf_.size() - written,
                       MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    DropLocked(now, "send()");
    return;
  }
  outbuf_.erase(0, written);
}

bool SocketTransport::Receive(SegmentFrame* out) {
  std::lock_guard<std::mutex> lock(mu_);
  PumpLocked(SteadyNowMs());
  if (inbox_.empty()) return false;
  *out = std::move(inbox_.front());
  inbox_.pop_front();
  return true;
}

Status SocketTransport::SendControl(ControlFrame frame) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = SteadyNowMs();
  PumpLocked(now);
  if (state_ != State::kConnected) {
    // A control frame into a down link is just lost on the wire — exactly
    // like a black-holed packet. The hello on reconnect carries the same
    // position, so nothing depends on this delivery.
    return Status::OK();
  }
  outbuf_ += EncodeControl(frame);
  WriteLocked(now);
  return Status::OK();
}

Status SocketTransport::Send(SegmentFrame /*frame*/) {
  return Status::InvalidArgument(
      "SocketTransport is the follower end; it does not send data frames");
}

bool SocketTransport::PollControl(ControlFrame* /*out*/) { return false; }

LinkStatus SocketTransport::link() const {
  std::lock_guard<std::mutex> lock(mu_);
  LinkStatus status;
  switch (state_) {
    case State::kIdle:
    case State::kConnecting:
      status.state = LinkStatus::State::kConnecting;
      break;
    case State::kConnected:
      status.state = LinkStatus::State::kConnected;
      if (last_heard_ms_ >= 0) {
        status.heartbeat_age_ms = SteadyNowMs() - last_heard_ms_;
      }
      break;
    case State::kBackoff:
      status.state = LinkStatus::State::kBackoff;
      break;
    case State::kClosed:
      status.state = LinkStatus::State::kClosed;
      break;
  }
  status.reconnects = reconnects_;
  return status;
}

// ---- ServerLinkTransport (leader end of one follower link) ------------------

ServerLinkTransport::ServerLinkTransport(SocketOptions options)
    : options_(options) {}

ServerLinkTransport::~ServerLinkTransport() { Shutdown(); }

void ServerLinkTransport::Bind(int fd, bool resume, uint64_t resume_lsn,
                               std::string residual) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    ::close(fd);
    return;
  }
  if (fd_ >= 0) ::close(fd_);  // a reconnect replaces a half-dead socket
  fd_ = fd;
  decoder_ = WireDecoder();
  if (!residual.empty()) decoder_.Feed(residual);
  // Bytes buffered for the dead connection would arrive mid-stream garbage
  // on the new one; the resend below re-cuts everything from the follower's
  // announced position instead.
  outbuf_.clear();
  int64_t now = SteadyNowMs();
  last_heard_ms_ = now;
  last_beat_ms_ = now;
  if (ever_bound_) ++reconnects_;
  ever_bound_ = true;
  if (resume) control_.push_back({ControlType::kResend, resume_lsn});
}

bool ServerLinkTransport::PumpIo(int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_ || fd_ < 0) return false;
  // Write first: shipped segments and heartbeats drain toward the follower.
  if (now - last_beat_ms_ >= options_.heartbeat_interval_ms) {
    outbuf_ += EncodeHeartbeat(static_cast<uint64_t>(now));
    last_beat_ms_ = now;
  }
  size_t written = 0;
  while (written < outbuf_.size()) {
    ssize_t n = ::send(fd_, outbuf_.data() + written, outbuf_.size() - written,
                       MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    outbuf_.erase(0, written);
    DropLocked("send()");
    return false;
  }
  outbuf_.erase(0, written);
  // Read: control frames and heartbeats from the follower.
  char buf[kReadChunk];
  while (true) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      DropLocked("peer closed");
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    DropLocked("recv()");
    return false;
  }
  WireMessage msg;
  while (true) {
    Result<bool> next = decoder_.Next(&msg);
    if (!next.ok()) {
      DropLocked("stream desync");
      return false;
    }
    if (!*next) break;
    last_heard_ms_ = now;
    switch (msg.kind) {
      case WireKind::kControl:
        control_.push_back(msg.control);
        break;
      case WireKind::kHeartbeat:
        break;
      case WireKind::kHello:
      case WireKind::kData:
        DropLocked("unexpected message kind");  // follower-bound kinds
        return false;
    }
  }
  if (last_heard_ms_ >= 0 && now - last_heard_ms_ > options_.peer_deadline_ms) {
    // The follower went silent past the deadline: drop the socket and wait
    // for it to dial back in (its hello will Rebind onto this link).
    DropLocked("peer deadline");
    return false;
  }
  return true;
}

void ServerLinkTransport::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  shutdown_ = true;
}

void ServerLinkTransport::DropLocked(const char* /*why*/) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = WireDecoder();
  outbuf_.clear();
}

Status ServerLinkTransport::Send(SegmentFrame frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_ || fd_ < 0) {
    return Status::Aborted("follower link is down");
  }
  std::string msg = EncodeData(frame);
  if (outbuf_.size() + msg.size() > options_.max_buffered_bytes) {
    // Backpressure, not an error state: the shipper's cursor stays put and
    // a later pump retries once the follower drains the buffer.
    return Status::Aborted("follower send buffer full");
  }
  outbuf_ += msg;
  return Status::OK();
}

bool ServerLinkTransport::PollControl(ControlFrame* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (control_.empty()) return false;
  *out = control_.front();
  control_.pop_front();
  return true;
}

LinkStatus ServerLinkTransport::link() const {
  std::lock_guard<std::mutex> lock(mu_);
  LinkStatus status;
  if (shutdown_) {
    status.state = LinkStatus::State::kClosed;
  } else if (fd_ >= 0) {
    status.state = LinkStatus::State::kConnected;
    if (last_heard_ms_ >= 0) {
      status.heartbeat_age_ms = SteadyNowMs() - last_heard_ms_;
    }
  } else {
    status.state = LinkStatus::State::kBackoff;
  }
  status.reconnects = reconnects_;
  return status;
}

bool ServerLinkTransport::Receive(SegmentFrame* /*out*/) { return false; }

Status ServerLinkTransport::SendControl(ControlFrame /*frame*/) {
  return Status::InvalidArgument(
      "ServerLinkTransport is the leader end; it does not send control");
}

// ---- SocketReplicationServer ------------------------------------------------

SocketReplicationServer::~SocketReplicationServer() { Stop(); }

Status SocketReplicationServer::Start(GraphDatabase* db,
                                      const Endpoint& endpoint,
                                      const ReplicationOptions& replication,
                                      SocketOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::InvalidArgument("server already running");
  if (db == nullptr || !db->durable()) {
    return Status::InvalidArgument(
        "socket replication serves a durable leader (OpenDurable first)");
  }
  sockaddr_storage addr;
  socklen_t addr_len = 0;
  CYPHER_RETURN_NOT_OK(FillAddr(endpoint, &addr, &addr_len));
  int af = endpoint.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  int fd = ::socket(af, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket()");
  Status st = SetNonBlocking(fd);
  if (st.ok() && endpoint.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (st.ok() && endpoint.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint.path.c_str());  // a stale path from a dead process
  }
  if (st.ok() && ::bind(fd, reinterpret_cast<sockaddr*>(&addr), addr_len) != 0) {
    st = Errno("bind(" + endpoint.ToString() + ")");
  }
  if (st.ok() && ::listen(fd, 64) != 0) st = Errno("listen()");
  endpoint_ = endpoint;
  if (st.ok() && endpoint.kind == Endpoint::Kind::kTcp && endpoint.port == 0) {
    // Ephemeral port: report what the OS picked so tests (and the shell)
    // can hand followers a dialable address.
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
      endpoint_.port = ntohs(bound.sin_port);
    }
  }
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  db_ = db;
  replication_ = replication;
  options_ = options;
  listen_fd_ = fd;
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&SocketReplicationServer::RunLoop, this);
  return Status::OK();
}

void SocketReplicationServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
  for (Pending& p : pending_) ::close(p.fd);
  pending_.clear();
  for (Link& link : links_) link.transport->Shutdown();
  links_.clear();
  running_ = false;
}

bool SocketReplicationServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

Endpoint SocketReplicationServer::endpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoint_;
}

SocketReplicationServer::Stats SocketReplicationServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SocketReplicationServer::SetPaused(bool paused) {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = paused;
}

void SocketReplicationServer::RunLoop() {
  while (true) {
    bool pump_db = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      if (!paused_) {
        int64_t now = SteadyNowMs();
        AcceptReadyLocked(now);
        PumpPendingLocked(now);
        ReapDetachedLinksLocked();
        for (Link& link : links_) link.transport->PumpIo(now);
        pump_db = true;
      }
    }
    // Replication rounds run outside mu_ so status calls never wait on
    // database work; the lock order stays server → database → shipper →
    // link in every path that takes more than one.
    if (pump_db) (void)db_->PumpReplication();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void SocketReplicationServer::AcceptReadyLocked(int64_t now) {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, EINTR next tick, or listener gone
    ++stats_.accepted;
    Pending p;
    p.fd = fd;
    // A connection that cannot produce its hello within the peer deadline
    // is noise (a port scanner, a wedged peer) — cut it.
    p.deadline_ms = now + options_.peer_deadline_ms;
    pending_.push_back(std::move(p));
  }
}

void SocketReplicationServer::PumpPendingLocked(int64_t now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    bool drop = false;
    bool routed = false;
    char buf[4096];
    while (true) {
      ssize_t n = ::recv(it->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        it->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
        if (static_cast<size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {
        drop = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      drop = true;
      break;
    }
    if (!drop) {
      WireMessage msg;
      Result<bool> next = it->decoder.Next(&msg);
      if (!next.ok()) {
        drop = true;
      } else if (*next) {
        if (msg.kind == WireKind::kHello) {
          HandleHelloLocked(it->fd, msg.token, msg.lsn,
                            it->decoder.TakeRemaining());
          routed = true;
        } else {
          drop = true;  // anything before a hello is a protocol violation
        }
      } else if (now > it->deadline_ms) {
        drop = true;
      }
    }
    if (drop) {
      ::close(it->fd);
      ++stats_.hello_rejects;
    }
    if (drop || routed) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketReplicationServer::ReapDetachedLinksLocked() {
  if (links_.empty()) return;
  ReplicationStatus status = db_->replication_status();
  for (auto it = links_.begin(); it != links_.end();) {
    bool attached = false;
    for (const FollowerInfo& info : status.detail) {
      if (info.id == it->follower_id) {
        attached = true;
        break;
      }
    }
    if (attached) {
      ++it;
    } else {
      it->transport->Shutdown();
      it = links_.erase(it);
    }
  }
}

void SocketReplicationServer::HandleHelloLocked(int fd, uint64_t token,
                                                uint64_t lsn,
                                                std::string residual) {
  // Forget links whose follower the database no longer carries: a returning
  // follower with that token must go through a fresh attach, not rebind
  // onto a link the shipper stopped serving. (The serve loop also reaps
  // every tick — this keeps hello routing correct even when it races a
  // detach within the same tick.)
  ReapDetachedLinksLocked();
  if (token != 0) {
    for (Link& link : links_) {
      if (link.token == token) {
        // A returning follower: same identity, new socket. Rebind and let
        // the injected resend rewind the stream to its announced position.
        link.transport->Bind(fd, /*resume=*/true, lsn, std::move(residual));
        ++stats_.rebinds;
        return;
      }
    }
  }
  auto transport = std::make_shared<ServerLinkTransport>(options_);
  transport->Bind(fd, /*resume=*/false, lsn, std::move(residual));
  // Resume-vs-bootstrap: the follower may resume at `lsn` only when the WAL
  // still serves that position as a record boundary (at or above the
  // post-compaction resume floor, not past the durable end). Anything else —
  // a fresh follower (lsn 0), one whose position was compacted away, or one
  // from an unrelated history — gets a full snapshot bootstrap.
  uint64_t floor = db_->wal_writer()->min_resume_lsn();
  uint64_t durable = db_->wal_writer()->durable_lsn();
  bool resumable = lsn >= floor && lsn <= durable;
  Result<int> id = resumable
                       ? db_->AttachFollowerAt(transport, lsn, replication_)
                       : db_->AttachFollower(transport, replication_);
  // A compaction racing the attach can invalidate the resume position; the
  // follower is not wrong, just stale — bootstrap it instead.
  if (!id.ok() && resumable) id = db_->AttachFollower(transport, replication_);
  if (!id.ok()) {
    transport->Shutdown();
    ++stats_.hello_rejects;
    return;
  }
  links_.push_back(Link{token, *id, std::move(transport)});
  ++stats_.attaches;
}

}  // namespace cypher::replication
