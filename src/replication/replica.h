#ifndef CYPHER_REPLICATION_REPLICA_H_
#define CYPHER_REPLICATION_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "cypher/database.h"
#include "replication/transport.h"
#include "storage/log_file.h"

namespace cypher::replication {

/// A follower's own durable state: its WAL (the leader's byte stream,
/// re-framed under the follower's bootstrap snapshot) plus a tiny metadata
/// file mapping the local log back to leader LSN coordinates.
///
/// The follower WAL's layout is [magic][kSnapshot bootstrap record][raw
/// leader record bytes...]: everything after the bootstrap record is a
/// byte-exact slice [attach_lsn, applied_lsn) of the leader's durable WAL.
/// That slice property is the promotion invariant — a caught-up follower
/// promoted to leader opens a log whose record stream is a byte prefix of
/// the dead leader's, so the promoted leader's durable history IS a
/// committed prefix of the old one's.
///
/// The meta file pins the two facts the log alone cannot recover: the
/// leader LSN the bootstrap snapshot covered (attach_lsn — local file
/// offsets shift by the bootstrap record size) and the follower's identity
/// token (how a reconnecting process proves to the leader it is the same
/// follower and may resume rather than re-bootstrap).
struct ReplicaDurability {
  std::unique_ptr<storage::LogFile> wal;
  std::unique_ptr<storage::LogFile> meta;
};

/// A read-only follower: wraps its own GraphDatabase, bootstraps from the
/// leader's snapshot frame, then applies committed statements in leader
/// order via the same replay path crash recovery uses (ApplyRedoLog). Every
/// applied statement publishes an MVCC epoch, so BeginReadSession serves
/// snapshot-isolated reads at the follower's applied position, lock-free
/// against the applier.
///
/// The applied-LSN invariant: after any PollOnce, the follower's graph is
/// byte-for-byte (DumpGraphCanonical) the state some committed leader
/// statement prefix produced, and applied_lsn() names exactly which one. A
/// frame that is damaged (CRC), torn (record framing), gapped, or
/// overlapping is never applied — the replica requests a resend from its
/// applied position and discards the rest of the queue (the shipper rewinds
/// and re-reads the log). Duplicate frames are skipped idempotently.
///
/// Mid-stream kSnapshot records (an explicit leader Checkpoint) advance the
/// LSN without touching the graph: a contiguous follower is already in
/// exactly the state the snapshot encodes.
///
/// With a ReplicaDurability the follower is crash-safe: every applied
/// record's raw bytes are appended to its own WAL and synced before the ack
/// goes out (an ack is a promise the bytes are durable — acking past a
/// crash would open an unservable gap on re-attach). A `kill -9` mid-apply
/// loses at most the unsynced tail; Open() recovers the durable prefix,
/// truncates torn bytes, and the reconnect hello resumes the stream from
/// the recovered position. A fresh bootstrap snapshot (first attach, or a
/// stale follower past leader retention) rewrites the WAL whole.
///
/// Threading: one applier thread calls PollOnce; status getters are safe
/// from anywhere; concurrent reads go through BeginReadSession (one session
/// per reader thread, as on the leader).
class Replica {
 public:
  explicit Replica(std::shared_ptr<Transport> transport,
                   EvalOptions options = {});

  /// Durable follower. If the WAL already holds a recovered prefix (a
  /// restarted process), the graph is rebuilt from it, applied_lsn() maps
  /// back into leader coordinates, and bootstrapped() is already true — the
  /// transport's reconnect hello then resumes the stream from there.
  static Result<std::unique_ptr<Replica>> Open(
      std::shared_ptr<Transport> transport, ReplicaDurability durability,
      EvalOptions options = {});

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Drains every queued frame, applying in order. Returns the number of
  /// frames applied (bootstrap counts as one).
  Result<size_t> PollOnce();

  /// The LSN of the last applied record boundary (0 before bootstrap).
  uint64_t applied_lsn() const { return applied_lsn_.load(); }

  bool bootstrapped() const { return bootstrapped_.load(); }

  /// Statement records applied since bootstrap (or, after a durable
  /// restart, since the recovered WAL's latest snapshot).
  uint64_t statements_applied() const { return statements_.load(); }

  /// Bootstrap snapshots accepted (1 after the first attach; a second one
  /// means the follower went stale and re-bootstrapped from scratch).
  uint64_t bootstraps() const { return bootstraps_.load(); }

  /// The follower's identity across reconnects: nonzero, random at first
  /// construction, persisted in the meta file for durable followers. The
  /// hello a SocketTransport sends carries it so the leader can tell a
  /// returning follower from a new one.
  uint64_t token() const { return token_.load(); }

  /// Snapshot-isolated read session pinned at the applied epoch; requires a
  /// completed bootstrap (the database is MVCC-enabled from then on).
  Result<GraphDatabase::ReadSession> BeginReadSession() {
    return db_.BeginReadSession();
  }

  /// The wrapped database — inspection and read-only use only; writing to
  /// it would diverge from the leader stream. Call from the applier thread
  /// (or with it quiescent); concurrent readers use BeginReadSession.
  GraphDatabase& database() { return db_; }

  /// DumpGraphCanonical of the applied state (applier thread only).
  std::string CanonicalDump() const;

  // ---- Failover -------------------------------------------------------------

  /// Promotes this (durable, bootstrapped) follower to a standalone durable
  /// leader: seals the replica (no more frames apply, the transport is
  /// dropped), fsyncs its WAL, and opens a fresh GraphDatabase over it.
  /// Because the follower WAL's record stream is a byte slice of the dead
  /// leader's durable WAL ending at applied_lsn(), the promoted leader
  /// serves exactly the committed statement prefix the old leader had
  /// shipped — recovery replays it record by record — and every write it
  /// accepts from here on extends that prefix in its own right. Attach new
  /// followers to the returned database to rebuild the replication tree.
  ///
  /// The replica is unusable afterwards except for status getters.
  Result<GraphDatabase> PromoteToLeader(DurabilityOptions durability = {});

  bool sealed() const { return sealed_.load(); }

  /// The follower's own log file (durable mode; null otherwise) — tests
  /// compare its bytes against the leader's WAL, nothing else should.
  storage::LogFile* wal_file() {
    return durability_.wal ? durability_.wal.get() : nullptr;
  }

 private:
  Replica(std::shared_ptr<Transport> transport, ReplicaDurability durability,
          EvalOptions options);

  /// Rebuilds state from a durable WAL + meta left by a previous process.
  /// A fresh (empty/unusable) pair is not an error — the replica just
  /// starts un-bootstrapped.
  Status RecoverFromDurable();

  /// Validates and applies one frame; `*applied` increments when the frame
  /// advanced state. Any non-OK return means "damaged or out of order" and
  /// triggers the resend protocol in PollOnce.
  Status ApplyFrame(const SegmentFrame& frame, size_t* applied);

  /// Persists the bootstrap snapshot: the WAL becomes [magic][kSnapshot
  /// record], the meta records attach_lsn + token.
  Status PersistBootstrap(const SegmentFrame& frame);

  std::shared_ptr<Transport> transport_;
  GraphDatabase db_;
  ReplicaDurability durability_;
  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<bool> bootstrapped_{false};
  std::atomic<bool> sealed_{false};
  std::atomic<uint64_t> statements_{0};
  std::atomic<uint64_t> bootstraps_{0};
  std::atomic<uint64_t> token_{0};
};

}  // namespace cypher::replication

#endif  // CYPHER_REPLICATION_REPLICA_H_
