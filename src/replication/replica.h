#ifndef CYPHER_REPLICATION_REPLICA_H_
#define CYPHER_REPLICATION_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "cypher/database.h"
#include "replication/transport.h"

namespace cypher::replication {

/// A read-only follower: wraps its own GraphDatabase, bootstraps from the
/// leader's snapshot frame, then applies committed statements in leader
/// order via the same replay path crash recovery uses (ApplyRedoLog). Every
/// applied statement publishes an MVCC epoch, so BeginReadSession serves
/// snapshot-isolated reads at the follower's applied position, lock-free
/// against the applier.
///
/// The applied-LSN invariant: after any PollOnce, the follower's graph is
/// byte-for-byte (DumpGraphCanonical) the state some committed leader
/// statement prefix produced, and applied_lsn() names exactly which one. A
/// frame that is damaged (CRC), torn (record framing), gapped, or
/// overlapping is never applied — the replica requests a resend from its
/// applied position and discards the rest of the queue (the shipper rewinds
/// and re-reads the log). Duplicate frames are skipped idempotently.
///
/// Mid-stream kSnapshot records (an explicit leader Checkpoint) advance the
/// LSN without touching the graph: a contiguous follower is already in
/// exactly the state the snapshot encodes.
///
/// Threading: one applier thread calls PollOnce; status getters are safe
/// from anywhere; concurrent reads go through BeginReadSession (one session
/// per reader thread, as on the leader).
class Replica {
 public:
  explicit Replica(std::shared_ptr<Transport> transport,
                   EvalOptions options = {});

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Drains every queued frame, applying in order. Returns the number of
  /// frames applied (bootstrap counts as one).
  Result<size_t> PollOnce();

  /// The LSN of the last applied record boundary (0 before bootstrap).
  uint64_t applied_lsn() const { return applied_lsn_.load(); }

  bool bootstrapped() const { return bootstrapped_.load(); }

  /// Statement records applied since bootstrap.
  uint64_t statements_applied() const { return statements_.load(); }

  /// Snapshot-isolated read session pinned at the applied epoch; requires a
  /// completed bootstrap (the database is MVCC-enabled from then on).
  Result<GraphDatabase::ReadSession> BeginReadSession() {
    return db_.BeginReadSession();
  }

  /// The wrapped database — inspection and read-only use only; writing to
  /// it would diverge from the leader stream. Call from the applier thread
  /// (or with it quiescent); concurrent readers use BeginReadSession.
  GraphDatabase& database() { return db_; }

  /// DumpGraphCanonical of the applied state (applier thread only).
  std::string CanonicalDump() const;

 private:
  /// Validates and applies one frame; `*applied` increments when the frame
  /// advanced state. Any non-OK return means "damaged or out of order" and
  /// triggers the resend protocol in PollOnce.
  Status ApplyFrame(const SegmentFrame& frame, size_t* applied);

  std::shared_ptr<Transport> transport_;
  GraphDatabase db_;
  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<bool> bootstrapped_{false};
  std::atomic<uint64_t> statements_{0};
};

}  // namespace cypher::replication

#endif  // CYPHER_REPLICATION_REPLICA_H_
