#ifndef CYPHER_REPLICATION_SOCKET_TRANSPORT_H_
#define CYPHER_REPLICATION_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "cypher/database.h"
#include "replication/transport.h"
#include "replication/wire.h"

namespace cypher::replication {

/// Where a replication server listens / a follower dials: a TCP host:port
/// or a Unix-domain socket path. Text form "tcp:host:port" / "unix:path"
/// (what the shell's `:serve` and the replica_server binary take).
struct Endpoint {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host;  // kTcp
  int port = 0;      // kTcp; 0 asks the OS for an ephemeral port
  std::string path;  // kUnix

  static Endpoint Tcp(std::string host, int port);
  static Endpoint Unix(std::string path);
  static Result<Endpoint> Parse(std::string_view text);
  std::string ToString() const;
};

/// Timing knobs shared by both ends of a socket link. The defaults suit the
/// tests' timescale (everything sub-second); production use would stretch
/// them by an order of magnitude.
struct SocketOptions {
  /// A heartbeat goes out whenever this long passes without one.
  int64_t heartbeat_interval_ms = 100;

  /// The peer is declared lost when nothing (data, control, heartbeat)
  /// arrives for this long; the connection is dropped and — on the follower
  /// side — reconnect begins.
  int64_t peer_deadline_ms = 1500;

  /// Reconnect backoff: first wait, doubling per failed attempt up to the
  /// max, each wait jittered (half fixed, half uniform-random) so a herd of
  /// followers does not dial in lockstep.
  int64_t backoff_initial_ms = 20;
  int64_t backoff_max_ms = 2000;

  /// Seed for the jitter PRNG; 0 derives one from the endpoint so distinct
  /// followers jitter differently while any given test stays deterministic.
  uint64_t jitter_seed = 0;

  /// A connect attempt that is still pending after this long is abandoned
  /// (and backed off).
  int64_t connect_timeout_ms = 1000;

  /// Leader-side cap on bytes buffered toward one follower; a Send that
  /// would exceed it fails with kAborted (backpressure) and the shipper
  /// retries on a later pump.
  uint64_t max_buffered_bytes = 64ull << 20;
};

/// Milliseconds on the steady clock (the time base for every deadline here).
int64_t SteadyNowMs();

/// The follower end of a socket link: a Transport whose Receive/SendControl
/// drive a non-blocking connection state machine. No background thread —
/// the replica's poll loop IS the event loop (each Receive/SendControl/Pump
/// call advances connects, reads, writes, heartbeats, and deadlines).
///
/// Lifecycle: kConnecting → kConnected ⇄ kBackoff (lost peer, exponential
/// backoff with jitter, reconnect) → kClosed (Close()). On every successful
/// connect the transport sends a hello [token, applied lsn] obtained from
/// the hello source — the replica's identity and resume position — and the
/// leader answers by resuming the stream there (or re-bootstrapping a
/// follower it no longer remembers). Either end dying, `kill -9` included,
/// therefore needs no handshake to recover: the survivor just dials (or
/// accepts) again.
///
/// Thread-safe; in practice one applier thread drives it.
class SocketTransport : public Transport {
 public:
  SocketTransport(Endpoint endpoint, SocketOptions options = {});
  ~SocketTransport() override;

  /// Installs the hello source: called at every (re)connect for the
  /// {token, applied lsn} pair to announce. Wire this to the Replica's
  /// token() and applied_lsn() before the first Pump.
  void SetHelloSource(std::function<std::pair<uint64_t, uint64_t>()> source);

  /// Advances the state machine: connect progress, socket reads (decoded
  /// frames queue for Receive), writes, heartbeats, deadlines. Receive and
  /// SendControl call this implicitly; tests and idle loops call it
  /// directly to keep heartbeats flowing.
  void Pump();

  /// Permanently shuts the link down (state kClosed, no reconnects).
  void Close();

  // Transport (follower endpoint).
  bool Receive(SegmentFrame* out) override;
  Status SendControl(ControlFrame frame) override;
  LinkStatus link() const override;

  // Transport (leader endpoint) — not this end's role.
  Status Send(SegmentFrame frame) override;
  bool PollControl(ControlFrame* out) override;

  /// Test hook simulating a network partition from this end: while paused
  /// the state machine is frozen — no reads, writes, heartbeats, connects,
  /// or deadline checks. On unpause the stalled deadline fires naturally
  /// and the reconnect/hello/resume protocol runs for real.
  void TestSetPaused(bool paused);

 private:
  enum class State { kIdle, kConnecting, kConnected, kBackoff, kClosed };

  void PumpLocked(int64_t now);
  void StartConnectLocked(int64_t now);
  void OnConnectedLocked(int64_t now);
  /// Drops the live/pending connection and schedules the next attempt.
  void DropLocked(int64_t now, const char* why);
  void ReadLocked(int64_t now);
  void WriteLocked(int64_t now);

  const Endpoint endpoint_;
  const SocketOptions options_;
  mutable std::mutex mu_;
  std::function<std::pair<uint64_t, uint64_t>()> hello_source_;
  State state_ = State::kIdle;
  int fd_ = -1;
  WireDecoder decoder_;
  std::string outbuf_;
  std::deque<SegmentFrame> inbox_;
  std::mt19937_64 rng_;
  int64_t backoff_ms_ = 0;
  int64_t next_attempt_ms_ = 0;    // earliest next dial (kIdle/kBackoff)
  int64_t connect_started_ms_ = 0;
  int64_t last_heard_ms_ = -1;     // peer bytes last seen (kConnected)
  int64_t last_beat_ms_ = 0;       // our last heartbeat out
  uint64_t reconnects_ = 0;
  bool ever_connected_ = false;
  bool paused_ = false;
};

/// The leader end of one follower's socket link: a Transport the LogShipper
/// ships into, backed by a socket the SocketReplicationServer owns and
/// pumps. Sends buffer into an outbound queue (bounded —
/// SocketOptions::max_buffered_bytes — a full buffer fails the Send with
/// kAborted and the shipper retries later); received control frames queue
/// for PollControl.
///
/// The link survives its socket: when the follower vanishes the fd closes
/// and the link reports kBackoff (the shipper stops shipping, cursors
/// freeze), and when the follower dials back in the server Rebinds the new
/// fd onto this same transport, injecting a kResend at the follower's
/// announced position so the stream rewinds exactly to where it stands.
class ServerLinkTransport : public Transport {
 public:
  explicit ServerLinkTransport(SocketOptions options);
  ~ServerLinkTransport() override;

  /// Adopts `fd` as the live connection (the first bind, or a reconnect).
  /// On reconnect (`resume`) a kResend at `resume_lsn` is queued for the
  /// shipper, rewinding the stream to the follower's announced position.
  /// `residual` is any bytes that arrived behind the hello on the same
  /// socket read (WireDecoder::TakeRemaining) — they belong to this link.
  void Bind(int fd, bool resume, uint64_t resume_lsn,
            std::string residual = {});

  /// One IO round: flush the outbound buffer, read + decode inbound bytes,
  /// heartbeat, enforce the peer deadline. Returns false when the link lost
  /// its socket this round (the caller keeps the transport; the follower
  /// may dial back in).
  bool PumpIo(int64_t now);

  /// Closes the socket for good (server shutdown / detach).
  void Shutdown();

  // Transport (leader endpoint).
  Status Send(SegmentFrame frame) override;
  bool PollControl(ControlFrame* out) override;
  LinkStatus link() const override;

  // Transport (follower endpoint) — not this end's role.
  bool Receive(SegmentFrame* out) override;
  Status SendControl(ControlFrame frame) override;

 private:
  void DropLocked(const char* why);

  const SocketOptions options_;
  mutable std::mutex mu_;
  int fd_ = -1;
  bool shutdown_ = false;
  WireDecoder decoder_;
  std::string outbuf_;
  std::deque<ControlFrame> control_;
  int64_t last_heard_ms_ = -1;
  int64_t last_beat_ms_ = 0;
  uint64_t reconnects_ = 0;
  bool ever_bound_ = false;
};

/// Serves a leader database's replication stream on a socket endpoint.
///
/// A background thread accepts connections, reads each one's hello, and
/// routes it: a token it has seen (and whose follower the database still
/// carries) is a returning follower — the new fd Rebinds onto the existing
/// ServerLinkTransport and a resend rewinds the stream; an unknown token is
/// a new follower — attached at its announced LSN when the WAL still serves
/// it (AttachFollowerAt: the follower's own durable log has the rest), or
/// from a fresh snapshot bootstrap otherwise. The same thread pumps every
/// link's socket IO and the database's replication rounds, so followers
/// advance even when the leader commits nothing.
///
/// Stop() is abrupt by design — thread halted, sockets closed, followers
/// left attached — because the tests use it as the "leader crashed" switch;
/// destroying or continuing to use the database afterwards behaves exactly
/// as if the process had died mid-stream.
class SocketReplicationServer {
 public:
  SocketReplicationServer() = default;
  ~SocketReplicationServer();

  SocketReplicationServer(const SocketReplicationServer&) = delete;
  SocketReplicationServer& operator=(const SocketReplicationServer&) = delete;

  /// Binds + listens on `endpoint` and starts the serving thread. The
  /// database must outlive the server (or Stop() must run first).
  Status Start(GraphDatabase* db, const Endpoint& endpoint,
               const ReplicationOptions& replication, SocketOptions options);

  /// Halts the serving thread and closes every socket, abruptly (see class
  /// comment). Idempotent.
  void Stop();

  bool running() const;

  /// The endpoint actually bound — for kTcp with port 0 this carries the
  /// ephemeral port the OS picked.
  Endpoint endpoint() const;

  struct Stats {
    uint64_t accepted = 0;      // connections accepted
    uint64_t rebinds = 0;       // hellos routed to an existing link
    uint64_t attaches = 0;      // hellos that attached a new follower
    uint64_t hello_rejects = 0; // connections dropped before a valid hello
  };
  Stats stats() const;

  /// Test hook simulating a partition at the server: while paused the
  /// serving thread neither accepts nor pumps any socket, so followers see
  /// silence (heartbeat deadlines fire, reconnects queue in the backlog)
  /// until unpause, when every queued hello is processed and links rebind.
  void SetPaused(bool paused);

 private:
  struct Pending {  // accepted, hello not yet read
    int fd = -1;
    WireDecoder decoder;
    int64_t deadline_ms = 0;
  };
  struct Link {
    uint64_t token = 0;
    int follower_id = 0;
    std::shared_ptr<ServerLinkTransport> transport;
  };

  void RunLoop();
  void AcceptReadyLocked(int64_t now);
  void PumpPendingLocked(int64_t now);
  /// Drops links whose follower the database no longer carries (explicitly
  /// detached, or auto-detached by the staleness cap). Runs every serve
  /// tick: a stale-detached link must stop heartbeating, or its follower
  /// keeps seeing a live peer and never reconnects for its re-bootstrap.
  void ReapDetachedLinksLocked();
  /// Routes one hello (see class comment). Takes database locks; called
  /// with mu_ held — the lock order db-exec → shipper → link never inverts
  /// because nothing inside the database layer calls back into the server.
  void HandleHelloLocked(int fd, uint64_t token, uint64_t lsn,
                         std::string residual);

  mutable std::mutex mu_;
  GraphDatabase* db_ = nullptr;
  Endpoint endpoint_;
  ReplicationOptions replication_{};
  SocketOptions options_;
  int listen_fd_ = -1;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
  bool paused_ = false;
  std::vector<Pending> pending_;
  std::vector<Link> links_;
  Stats stats_;
};

}  // namespace cypher::replication

#endif  // CYPHER_REPLICATION_SOCKET_TRANSPORT_H_
