#ifndef CYPHER_REPLICATION_TRANSPORT_H_
#define CYPHER_REPLICATION_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"

namespace cypher::replication {

/// One leader→follower message. A kSnapshot frame bootstraps: `payload` is
/// an exact-slot snapshot (storage::EncodeSnapshot) of the leader graph as
/// of `to_lsn`. A kSegment frame tails: `payload` is a run of whole,
/// CRC-framed WAL records covering exactly the leader's durable byte range
/// [from_lsn, to_lsn). `crc` covers `payload` end to end, so a transport
/// that corrupts or truncates a frame is caught before anything applies.
enum class FrameType : uint8_t {
  kSnapshot = 1,
  kSegment = 2,
};

struct SegmentFrame {
  FrameType type = FrameType::kSegment;
  uint64_t from_lsn = 0;
  uint64_t to_lsn = 0;
  uint32_t crc = 0;
  std::string payload;
};

/// One follower→leader message. kAck: "applied through `lsn`, retention may
/// advance". kResend: "something arrived damaged or out of order; resume the
/// stream from `lsn`" (the follower's applied position — 0 asks for the
/// bootstrap snapshot again).
enum class ControlType : uint8_t {
  kAck = 1,
  kResend = 2,
};

struct ControlFrame {
  ControlType type = ControlType::kAck;
  uint64_t lsn = 0;
};

/// The pluggable wire between a LogShipper and a Replica: a data channel
/// leader→follower and a control channel back. The interface is
/// socket-shaped — frames are self-delimiting, checksummed, and carry their
/// own LSN coordinates, so a TCP implementation is a serialization detail —
/// but the only implementation today is an in-process pair of queues.
///
/// Receive/Poll calls are non-blocking polls (a follower tails at its own
/// pace). Implementations must be safe for one sender and one receiver
/// thread per channel.
class Transport {
 public:
  virtual ~Transport() = default;

  // Leader endpoint.
  virtual Status Send(SegmentFrame frame) = 0;
  virtual bool PollControl(ControlFrame* out) = 0;

  // Follower endpoint.
  virtual bool Receive(SegmentFrame* out) = 0;
  virtual Status SendControl(ControlFrame frame) = 0;
};

/// Two mutex-guarded deques; the in-process "wire".
class InProcessTransport : public Transport {
 public:
  Status Send(SegmentFrame frame) override {
    std::lock_guard<std::mutex> lock(mu_);
    data_.push_back(std::move(frame));
    return Status::OK();
  }

  bool Receive(SegmentFrame* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (data_.empty()) return false;
    *out = std::move(data_.front());
    data_.pop_front();
    return true;
  }

  Status SendControl(ControlFrame frame) override {
    std::lock_guard<std::mutex> lock(mu_);
    control_.push_back(frame);
    return Status::OK();
  }

  bool PollControl(ControlFrame* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (control_.empty()) return false;
    *out = control_.front();
    control_.pop_front();
    return true;
  }

  /// Queued-but-undelivered data frames (tests size the pipe).
  size_t pending_data() const {
    std::lock_guard<std::mutex> lock(mu_);
    return data_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<SegmentFrame> data_;
  std::deque<ControlFrame> control_;
};

/// Fault-injection wrapper over a real transport, in the FaultyLogFile
/// style: schedule a fault on the n-th (1-based) data Send and the frame is
/// corrupted, truncated, duplicated, or dropped on the wire. The follower's
/// CRC/LSN checks must catch every one of these — a torn record must never
/// apply, an LSN must never be skipped — and the resend protocol must
/// converge afterwards. Control frames pass through untouched.
class FaultyTransport : public Transport {
 public:
  explicit FaultyTransport(std::shared_ptr<Transport> base)
      : base_(std::move(base)) {}

  enum class Fault { kCorrupt, kTruncate, kDuplicate, kDrop };

  /// Schedules `fault` for the `send`-th data Send (1-based). Multiple
  /// sends can each carry their own fault.
  void InjectOnSend(uint64_t send, Fault fault) {
    std::lock_guard<std::mutex> lock(mu_);
    faults_[send] = fault;
  }

  uint64_t sends() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sends_;
  }

  Status Send(SegmentFrame frame) override {
    Fault fault;
    bool faulty = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++sends_;
      auto it = faults_.find(sends_);
      if (it != faults_.end()) {
        faulty = true;
        fault = it->second;
        faults_.erase(it);
      }
    }
    if (!faulty) return base_->Send(std::move(frame));
    switch (fault) {
      case Fault::kCorrupt:
        // Flip one payload bit, leaving the frame CRC stale.
        if (!frame.payload.empty()) {
          frame.payload[frame.payload.size() / 2] ^= 0x20;
        } else {
          frame.crc ^= 1;
        }
        return base_->Send(std::move(frame));
      case Fault::kTruncate:
        frame.payload.resize(frame.payload.size() / 2);
        return base_->Send(std::move(frame));
      case Fault::kDuplicate: {
        SegmentFrame copy = frame;
        Status st = base_->Send(std::move(copy));
        if (!st.ok()) return st;
        return base_->Send(std::move(frame));
      }
      case Fault::kDrop:
        return Status::OK();  // vanished on the wire, sender none the wiser
    }
    return Status::OK();
  }

  bool Receive(SegmentFrame* out) override { return base_->Receive(out); }

  Status SendControl(ControlFrame frame) override {
    return base_->SendControl(frame);
  }

  bool PollControl(ControlFrame* out) override {
    return base_->PollControl(out);
  }

 private:
  std::shared_ptr<Transport> base_;
  mutable std::mutex mu_;
  std::map<uint64_t, Fault> faults_;
  uint64_t sends_ = 0;
};

}  // namespace cypher::replication

#endif  // CYPHER_REPLICATION_TRANSPORT_H_
