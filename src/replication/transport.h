#ifndef CYPHER_REPLICATION_TRANSPORT_H_
#define CYPHER_REPLICATION_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace cypher::replication {

/// One leader→follower message. A kSnapshot frame bootstraps: `payload` is
/// an exact-slot snapshot (storage::EncodeSnapshot) of the leader graph as
/// of `to_lsn`. A kSegment frame tails: `payload` is a run of whole,
/// CRC-framed WAL records covering exactly the leader's durable byte range
/// [from_lsn, to_lsn). `crc` covers `payload` end to end, so a transport
/// that corrupts or truncates a frame is caught before anything applies.
enum class FrameType : uint8_t {
  kSnapshot = 1,
  kSegment = 2,
};

struct SegmentFrame {
  FrameType type = FrameType::kSegment;
  uint64_t from_lsn = 0;
  uint64_t to_lsn = 0;
  uint32_t crc = 0;
  std::string payload;
};

/// One follower→leader message. kAck: "applied through `lsn`, retention may
/// advance". kResend: "something arrived damaged or out of order; resume the
/// stream from `lsn`" (the follower's applied position — 0 asks for the
/// bootstrap snapshot again).
enum class ControlType : uint8_t {
  kAck = 1,
  kResend = 2,
};

struct ControlFrame {
  ControlType type = ControlType::kAck;
  uint64_t lsn = 0;
};

/// Health of the wire under a Transport, as seen from the reporting end.
/// The in-process queue is always "connected"; the socket transport reports
/// its real connection state machine (see socket_transport.h), which the
/// shipper surfaces in ReplicationStatus and the shell prints under `:lag`.
struct LinkStatus {
  enum class State {
    kInProcess,   // no real wire (queue transport)
    kConnecting,  // dialing, or waiting for the peer's hello
    kConnected,   // live, heartbeats flowing
    kBackoff,     // lost the peer; waiting out the reconnect backoff
    kClosed,      // shut down for good
  };
  State state = State::kInProcess;
  /// Completed reconnections (0 for a link that never dropped).
  uint64_t reconnects = 0;
  /// Milliseconds since the peer was last heard from (any message counts);
  /// -1 when never heard from or not applicable.
  int64_t heartbeat_age_ms = -1;
};

inline const char* LinkStateName(LinkStatus::State state) {
  switch (state) {
    case LinkStatus::State::kInProcess: return "in-process";
    case LinkStatus::State::kConnecting: return "connecting";
    case LinkStatus::State::kConnected: return "connected";
    case LinkStatus::State::kBackoff: return "backoff";
    case LinkStatus::State::kClosed: return "closed";
  }
  return "unknown";
}

/// The pluggable wire between a LogShipper and a Replica: a data channel
/// leader→follower and a control channel back. The interface is
/// socket-shaped — frames are self-delimiting, checksummed, and carry their
/// own LSN coordinates, so a TCP implementation is a serialization detail.
/// Two implementations: the in-process queue pair below, and the real
/// socket transport (socket_transport.h).
///
/// Receive/Poll calls are non-blocking polls (a follower tails at its own
/// pace). Implementations must be safe for one sender and one receiver
/// thread per channel.
class Transport {
 public:
  virtual ~Transport() = default;

  // Leader endpoint.
  virtual Status Send(SegmentFrame frame) = 0;
  virtual bool PollControl(ControlFrame* out) = 0;

  // Follower endpoint.
  virtual bool Receive(SegmentFrame* out) = 0;
  virtual Status SendControl(ControlFrame frame) = 0;

  /// Wire health from this end; the default is the in-process "always
  /// connected" report.
  virtual LinkStatus link() const { return LinkStatus{}; }
};

/// Two mutex-guarded deques; the in-process "wire".
class InProcessTransport : public Transport {
 public:
  Status Send(SegmentFrame frame) override {
    std::lock_guard<std::mutex> lock(mu_);
    data_.push_back(std::move(frame));
    return Status::OK();
  }

  bool Receive(SegmentFrame* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (data_.empty()) return false;
    *out = std::move(data_.front());
    data_.pop_front();
    return true;
  }

  Status SendControl(ControlFrame frame) override {
    std::lock_guard<std::mutex> lock(mu_);
    control_.push_back(frame);
    return Status::OK();
  }

  bool PollControl(ControlFrame* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (control_.empty()) return false;
    *out = control_.front();
    control_.pop_front();
    return true;
  }

  /// Queued-but-undelivered data frames (tests size the pipe).
  size_t pending_data() const {
    std::lock_guard<std::mutex> lock(mu_);
    return data_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<SegmentFrame> data_;
  std::deque<ControlFrame> control_;
};

/// Fault-injection wrapper over a real transport, in the FaultyLogFile
/// style: schedule a fault on the n-th (1-based) data Send and the frame is
/// corrupted, truncated, duplicated, dropped, delayed, or reordered on the
/// wire; or partition the whole link for a stretch. The follower's CRC/LSN
/// checks must catch every one of these — a torn record must never apply,
/// an LSN must never be skipped — and the resend protocol must converge
/// afterwards. Control frames pass through untouched except during a
/// partition, which silences both directions.
class FaultyTransport : public Transport {
 public:
  explicit FaultyTransport(std::shared_ptr<Transport> base)
      : base_(std::move(base)) {}

  enum class Fault {
    kCorrupt,    // flip a payload bit (stale CRC)
    kTruncate,   // cut the payload in half
    kDuplicate,  // deliver twice
    kDrop,       // vanish silently
    kDelay,      // hold back; delivered after two later sends (or a flush)
    kReorder,    // hold back; delivered right after the next send (a swap)
  };

  /// Schedules `fault` for the `send`-th data Send (1-based). Multiple
  /// sends can each carry their own fault.
  void InjectOnSend(uint64_t send, Fault fault) {
    std::lock_guard<std::mutex> lock(mu_);
    faults_[send] = fault;
  }

  /// Network partition: until Heal(), nothing crosses in either direction —
  /// data and control frames sent meanwhile are silently lost (the sender
  /// sees OK, exactly like packets into a black hole) and the receive side
  /// polls empty. The resend protocol must reconverge after Heal().
  void Partition() {
    std::lock_guard<std::mutex> lock(mu_);
    partitioned_ = true;
  }

  void Heal() {
    std::lock_guard<std::mutex> lock(mu_);
    partitioned_ = false;
  }

  /// Delivers every held (delayed/reordered) frame now. Tests call this
  /// before the final catch-up: a frame delayed behind the last send of a
  /// workload would otherwise wait forever.
  Status FlushDelayed() {
    std::vector<SegmentFrame> held;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Held& h : held_) held.push_back(std::move(h.frame));
      held_.clear();
      if (partitioned_) return Status::OK();  // flushed into the void
    }
    for (SegmentFrame& frame : held) {
      CYPHER_RETURN_NOT_OK(base_->Send(std::move(frame)));
    }
    return Status::OK();
  }

  uint64_t sends() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sends_;
  }

  Status Send(SegmentFrame frame) override {
    Fault fault = Fault::kDrop;
    bool faulty = false;
    bool partitioned = false;
    std::vector<SegmentFrame> release;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++sends_;
      partitioned = partitioned_;
      auto it = faults_.find(sends_);
      if (it != faults_.end()) {
        faulty = true;
        fault = it->second;
        faults_.erase(it);
      }
      if (faulty && (fault == Fault::kDelay || fault == Fault::kReorder)) {
        // Hold the frame back; it re-enters the stream after `release_after`
        // later sends pass through (1 = swapped with the next frame).
        held_.push_back({std::move(frame), fault == Fault::kReorder ? 1 : 2});
        return Status::OK();
      }
      // This send passes through: held frames tick down, and any that hit
      // zero ride out right behind it (out of their original order).
      for (auto it2 = held_.begin(); it2 != held_.end();) {
        if (--it2->release_after == 0) {
          release.push_back(std::move(it2->frame));
          it2 = held_.erase(it2);
        } else {
          ++it2;
        }
      }
    }
    Status st = SendThrough(std::move(frame), faulty, fault, partitioned);
    for (SegmentFrame& late : release) {
      if (!st.ok()) return st;
      st = partitioned ? Status::OK() : base_->Send(std::move(late));
    }
    return st;
  }

  bool Receive(SegmentFrame* out) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (partitioned_) return false;
    }
    return base_->Receive(out);
  }

  Status SendControl(ControlFrame frame) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (partitioned_) return Status::OK();  // lost in the partition
    }
    return base_->SendControl(frame);
  }

  bool PollControl(ControlFrame* out) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (partitioned_) return false;
    }
    return base_->PollControl(out);
  }

  LinkStatus link() const override { return base_->link(); }

 private:
  struct Held {
    SegmentFrame frame;
    int release_after;
  };

  /// Applies the per-frame byte faults and forwards to the base transport
  /// (or the void, during a partition).
  Status SendThrough(SegmentFrame frame, bool faulty, Fault fault,
                     bool partitioned) {
    if (partitioned) return Status::OK();  // black hole
    if (!faulty) return base_->Send(std::move(frame));
    switch (fault) {
      case Fault::kCorrupt:
        // Flip one payload bit, leaving the frame CRC stale.
        if (!frame.payload.empty()) {
          frame.payload[frame.payload.size() / 2] ^= 0x20;
        } else {
          frame.crc ^= 1;
        }
        return base_->Send(std::move(frame));
      case Fault::kTruncate:
        frame.payload.resize(frame.payload.size() / 2);
        return base_->Send(std::move(frame));
      case Fault::kDuplicate: {
        SegmentFrame copy = frame;
        Status st = base_->Send(std::move(copy));
        if (!st.ok()) return st;
        return base_->Send(std::move(frame));
      }
      case Fault::kDrop:
        return Status::OK();  // vanished on the wire, sender none the wiser
      case Fault::kDelay:
      case Fault::kReorder:
        break;  // handled in Send; unreachable here
    }
    return Status::OK();
  }

  std::shared_ptr<Transport> base_;
  mutable std::mutex mu_;
  std::map<uint64_t, Fault> faults_;
  std::vector<Held> held_;
  uint64_t sends_ = 0;
  bool partitioned_ = false;
};

}  // namespace cypher::replication

#endif  // CYPHER_REPLICATION_TRANSPORT_H_
