#include "replication/replica.h"

#include <utility>
#include <vector>

#include "common/crc32.h"
#include "graph/serialize.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace cypher::replication {

Replica::Replica(std::shared_ptr<Transport> transport, EvalOptions options)
    : transport_(std::move(transport)), db_(std::move(options)) {}

Result<size_t> Replica::PollOnce() {
  size_t applied = 0;
  SegmentFrame frame;
  bool damaged = false;
  while (transport_->Receive(&frame)) {
    if (damaged) continue;  // drain the rest; the shipper will resend
    Status st = ApplyFrame(frame, &applied);
    if (!st.ok()) {
      // Never apply a damaged, torn, gapped, or overlapping frame. Ask the
      // shipper to resume from our applied position and discard everything
      // still queued — it was cut against the stream we just rejected.
      damaged = true;
      CYPHER_RETURN_NOT_OK(transport_->SendControl(
          {ControlType::kResend, applied_lsn_.load()}));
    }
  }
  if (applied > 0 && !damaged) {
    CYPHER_RETURN_NOT_OK(
        transport_->SendControl({ControlType::kAck, applied_lsn_.load()}));
  }
  return applied;
}

Status Replica::ApplyFrame(const SegmentFrame& frame, size_t* applied) {
  if (Crc32(frame.payload.data(), frame.payload.size()) != frame.crc) {
    return Status::InvalidArgument("replication frame failed its checksum");
  }
  if (frame.type == FrameType::kSnapshot) {
    if (bootstrapped_.load() && frame.to_lsn <= applied_lsn_.load()) {
      return Status::OK();  // duplicate bootstrap: already there
    }
    CYPHER_ASSIGN_OR_RETURN(PropertyGraph graph,
                            storage::DecodeSnapshot(frame.payload));
    db_.graph() = std::move(graph);
    // The graph object was replaced wholesale: stale stamped plans must not
    // revive, and MVCC starts fresh with the bootstrap state as epoch 0.
    db_.plan_cache().Clear();
    CYPHER_RETURN_NOT_OK(db_.EnableMvcc());
    applied_lsn_.store(frame.to_lsn);
    bootstrapped_.store(true);
    ++*applied;
    return Status::OK();
  }
  if (!bootstrapped_.load()) {
    return Status::InvalidArgument("segment before bootstrap snapshot");
  }
  uint64_t at = applied_lsn_.load();
  if (frame.to_lsn <= at) return Status::OK();  // duplicate: skip whole
  if (frame.from_lsn != at) {
    return Status::InvalidArgument("segment out of order: follower at lsn " +
                                   std::to_string(at) + ", segment starts " +
                                   std::to_string(frame.from_lsn));
  }
  if (frame.to_lsn - frame.from_lsn != frame.payload.size()) {
    return Status::InvalidArgument("segment length disagrees with lsn span");
  }
  // Validate the WHOLE segment before applying anything: a torn or
  // checksum-failing record anywhere means the transport damaged the frame,
  // and none of it may touch the graph.
  CYPHER_ASSIGN_OR_RETURN(std::vector<storage::WalRecord> records,
                          storage::DecodeWalSegment(frame.payload));
  std::string_view payload = frame.payload;
  size_t offset = 0;
  for (const storage::WalRecord& record : records) {
    offset += storage::WalFrameSize(payload.substr(offset));
    if (record.type == storage::WalRecordType::kStatement) {
      CYPHER_RETURN_NOT_OK(storage::ApplyRedoLog(&db_.graph(), record.payload));
      // Publish per statement: a read session opened mid-segment pins a
      // committed leader prefix, never a half-applied record.
      if (db_.mvcc_enabled()) db_.graph().PublishEpoch();
      statements_.fetch_add(1);
    }
    // kSnapshot: a contiguous follower already holds exactly this state
    // (an explicit leader checkpoint); only the LSN advances.
    //
    // The LSN moves per record, not per segment, so even a failure between
    // records resumes exactly at the failed record — never a re-apply.
    applied_lsn_.store(frame.from_lsn + offset);
  }
  ++*applied;
  return Status::OK();
}

std::string Replica::CanonicalDump() const {
  return DumpGraphCanonical(db_.graph());
}

}  // namespace cypher::replication
