#include "replication/replica.h"

#include <chrono>
#include <cstring>
#include <random>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "graph/serialize.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace cypher::replication {

namespace {

// Follower meta file: [8-byte magic][u64 attach_lsn][u64 token][u32 crc].
// Tiny and rewritten whole (LogFile::Replace) on every bootstrap, so a crash
// leaves either the old image or the new one, never a blend.
constexpr char kMetaMagic[8] = {'C', 'Y', 'R', 'M', 'E', 'T', 'A', '1'};
constexpr size_t kMetaSize = 8 + 8 + 8 + 4;

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::string EncodeMeta(uint64_t attach_lsn, uint64_t token) {
  std::string out(kMetaMagic, sizeof(kMetaMagic));
  PutU64(&out, attach_lsn);
  PutU64(&out, token);
  uint32_t crc = Crc32(out.data() + 8, 16);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(crc >> (8 * i)));
  return out;
}

bool DecodeMeta(std::string_view bytes, uint64_t* attach_lsn,
                uint64_t* token) {
  if (bytes.size() != kMetaSize) return false;
  if (std::memcmp(bytes.data(), kMetaMagic, sizeof(kMetaMagic)) != 0) {
    return false;
  }
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<uint32_t>(
               static_cast<unsigned char>(bytes[kMetaSize - 4 + i]))
           << (8 * i);
  }
  if (Crc32(bytes.data() + 8, 16) != crc) return false;
  *attach_lsn = GetU64(bytes.data() + 8);
  *token = GetU64(bytes.data() + 16);
  return true;
}

uint64_t FreshToken() {
  // Identity across reconnects, not a secret: it only needs to be unique
  // among the followers of one leader with overwhelming probability.
  std::random_device rd;
  uint64_t token = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  token ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  if (token == 0) token = 1;  // zero means "no identity" on the wire
  return token;
}

}  // namespace

Replica::Replica(std::shared_ptr<Transport> transport, EvalOptions options)
    : Replica(std::move(transport), ReplicaDurability{}, std::move(options)) {}

Replica::Replica(std::shared_ptr<Transport> transport,
                 ReplicaDurability durability, EvalOptions options)
    : transport_(std::move(transport)),
      db_(std::move(options)),
      durability_(std::move(durability)) {
  token_.store(FreshToken());
}

Result<std::unique_ptr<Replica>> Replica::Open(
    std::shared_ptr<Transport> transport, ReplicaDurability durability,
    EvalOptions options) {
  if (durability.wal == nullptr || durability.meta == nullptr) {
    return Status::InvalidArgument(
        "a durable replica needs both a wal and a meta log file");
  }
  std::unique_ptr<Replica> replica(new Replica(
      std::move(transport), std::move(durability), std::move(options)));
  CYPHER_RETURN_NOT_OK(replica->RecoverFromDurable());
  return replica;
}

Status Replica::RecoverFromDurable() {
  CYPHER_ASSIGN_OR_RETURN(std::string wal_bytes, durability_.wal->ReadAll());
  CYPHER_ASSIGN_OR_RETURN(std::string meta_bytes, durability_.meta->ReadAll());
  uint64_t attach_lsn = 0;
  uint64_t token = 0;
  bool have_meta = DecodeMeta(meta_bytes, &attach_lsn, &token);
  if (have_meta) token_.store(token);
  if (wal_bytes.empty() || !have_meta) {
    // Nothing usable from a previous life (first boot, or a crash before
    // the first bootstrap landed). Start clean; the leader will bootstrap.
    CYPHER_RETURN_NOT_OK(durability_.wal->Truncate(0));
    return Status::OK();
  }
  // Without the meta's attach_lsn the log cannot be mapped back into leader
  // coordinates, and vice versa — so from here on both must make sense
  // together or the durable state is abandoned wholesale.
  CYPHER_ASSIGN_OR_RETURN(storage::RecoveredGraph recovered,
                          storage::RecoverGraph(wal_bytes));
  std::string_view after_magic =
      std::string_view(wal_bytes).substr(storage::kWalMagicSize);
  size_t first_frame = storage::WalFrameSize(after_magic);
  if (first_frame == 0 ||
      recovered.valid_bytes < storage::kWalMagicSize + first_frame) {
    CYPHER_RETURN_NOT_OK(durability_.wal->Truncate(0));
    return Status::OK();
  }
  // Drop the torn tail a kill -9 mid-append leaves behind; everything below
  // valid_bytes replayed cleanly.
  if (recovered.torn_tail || recovered.valid_bytes < wal_bytes.size()) {
    CYPHER_RETURN_NOT_OK(durability_.wal->Truncate(recovered.valid_bytes));
    CYPHER_RETURN_NOT_OK(durability_.wal->Sync());
  }
  db_.graph() = std::move(recovered.graph);
  db_.plan_cache().Clear();
  CYPHER_RETURN_NOT_OK(db_.EnableMvcc());
  // Leader-coordinate position: the bootstrap record stands in for every
  // leader byte below attach_lsn; each raw record byte after it is one
  // leader byte.
  applied_lsn_.store(attach_lsn + (recovered.valid_bytes -
                                   storage::kWalMagicSize - first_frame));
  statements_.store(recovered.statements);
  bootstrapped_.store(true);
  bootstraps_.store(1);
  return Status::OK();
}

Result<size_t> Replica::PollOnce() {
  if (sealed_.load()) {
    return Status::InvalidArgument("replica is sealed (promoted)");
  }
  size_t applied = 0;
  SegmentFrame frame;
  bool damaged = false;
  while (transport_->Receive(&frame)) {
    if (damaged) continue;  // drain the rest; the shipper will resend
    Status st = ApplyFrame(frame, &applied);
    if (!st.ok()) {
      // Never apply a damaged, torn, gapped, or overlapping frame. Ask the
      // shipper to resume from our applied position and discard everything
      // still queued — it was cut against the stream we just rejected.
      damaged = true;
      CYPHER_RETURN_NOT_OK(transport_->SendControl(
          {ControlType::kResend, applied_lsn_.load()}));
    }
  }
  if (applied > 0 && !damaged) {
    // Durable follower: the ack promises these bytes survive a crash, so
    // they must be synced BEFORE it is sent — acking bytes a kill -9 then
    // loses would leave the leader free to compact a range the restarted
    // follower still needs.
    if (durability_.wal != nullptr) {
      CYPHER_RETURN_NOT_OK(durability_.wal->Sync());
    }
    CYPHER_RETURN_NOT_OK(
        transport_->SendControl({ControlType::kAck, applied_lsn_.load()}));
  }
  return applied;
}

Status Replica::PersistBootstrap(const SegmentFrame& frame) {
  std::string wal_image(storage::kWalMagic, storage::kWalMagicSize);
  wal_image += storage::EncodeWalRecord(storage::WalRecordType::kSnapshot,
                                        frame.payload);
  CYPHER_RETURN_NOT_OK(
      durability_.wal->Replace(wal_image.data(), wal_image.size()));
  std::string meta = EncodeMeta(frame.to_lsn, token_.load());
  return durability_.meta->Replace(meta.data(), meta.size());
}

Status Replica::ApplyFrame(const SegmentFrame& frame, size_t* applied) {
  if (Crc32(frame.payload.data(), frame.payload.size()) != frame.crc) {
    return Status::InvalidArgument("replication frame failed its checksum");
  }
  if (frame.type == FrameType::kSnapshot) {
    if (bootstrapped_.load() && frame.to_lsn <= applied_lsn_.load()) {
      return Status::OK();  // duplicate bootstrap: already there
    }
    CYPHER_ASSIGN_OR_RETURN(PropertyGraph graph,
                            storage::DecodeSnapshot(frame.payload));
    // Persist before the state switch: if the Replace tears (crash), the
    // meta no longer matches and the next boot just re-bootstraps.
    if (durability_.wal != nullptr) {
      CYPHER_RETURN_NOT_OK(PersistBootstrap(frame));
    }
    db_.graph() = std::move(graph);
    // The graph object was replaced wholesale: stale stamped plans must not
    // revive, and MVCC starts fresh with the bootstrap state as epoch 0.
    db_.plan_cache().Clear();
    CYPHER_RETURN_NOT_OK(db_.EnableMvcc());
    applied_lsn_.store(frame.to_lsn);
    statements_.store(0);
    bootstrapped_.store(true);
    bootstraps_.fetch_add(1);
    ++*applied;
    return Status::OK();
  }
  if (!bootstrapped_.load()) {
    return Status::InvalidArgument("segment before bootstrap snapshot");
  }
  uint64_t at = applied_lsn_.load();
  if (frame.to_lsn <= at) return Status::OK();  // duplicate: skip whole
  if (frame.from_lsn != at) {
    return Status::InvalidArgument("segment out of order: follower at lsn " +
                                   std::to_string(at) + ", segment starts " +
                                   std::to_string(frame.from_lsn));
  }
  if (frame.to_lsn - frame.from_lsn != frame.payload.size()) {
    return Status::InvalidArgument("segment length disagrees with lsn span");
  }
  // Validate the WHOLE segment before applying anything: a torn or
  // checksum-failing record anywhere means the transport damaged the frame,
  // and none of it may touch the graph.
  CYPHER_ASSIGN_OR_RETURN(std::vector<storage::WalRecord> records,
                          storage::DecodeWalSegment(frame.payload));
  std::string_view payload = frame.payload;
  size_t offset = 0;
  for (const storage::WalRecord& record : records) {
    size_t frame_size = storage::WalFrameSize(payload.substr(offset));
    if (record.type == storage::WalRecordType::kStatement) {
      CYPHER_RETURN_NOT_OK(storage::ApplyRedoLog(&db_.graph(), record.payload));
      // Publish per statement: a read session opened mid-segment pins a
      // committed leader prefix, never a half-applied record.
      if (db_.mvcc_enabled()) db_.graph().PublishEpoch();
      statements_.fetch_add(1);
    }
    // kSnapshot: a contiguous follower already holds exactly this state
    // (an explicit leader checkpoint); only the LSN advances.
    if (durability_.wal != nullptr) {
      // Append the record's RAW bytes — this is what keeps the follower WAL
      // a byte-exact slice of the leader's (the promotion invariant). Sync
      // is deferred to the ack in PollOnce; a crash in between loses only
      // unacked bytes, which the reconnect hello re-fetches.
      CYPHER_RETURN_NOT_OK(
          durability_.wal->Append(payload.data() + offset, frame_size));
    }
    offset += frame_size;
    // The LSN moves per record, not per segment, so even a failure between
    // records resumes exactly at the failed record — never a re-apply.
    applied_lsn_.store(frame.from_lsn + offset);
  }
  ++*applied;
  return Status::OK();
}

std::string Replica::CanonicalDump() const {
  return DumpGraphCanonical(db_.graph());
}

Result<GraphDatabase> Replica::PromoteToLeader(DurabilityOptions durability) {
  if (durability_.wal == nullptr) {
    return Status::InvalidArgument(
        "only a durable replica can be promoted (it has no log to lead from)");
  }
  if (!bootstrapped_.load()) {
    return Status::InvalidArgument(
        "replica has no bootstrapped state to promote");
  }
  if (sealed_.load()) {
    return Status::InvalidArgument("replica already promoted");
  }
  // Seal first: from here no frame can apply, even if a poller races. The
  // transport is dropped — a socket transport closes and stops reconnecting.
  sealed_.store(true);
  transport_.reset();
  CYPHER_RETURN_NOT_OK(durability_.wal->Sync());
  // The accumulated log is [magic][bootstrap snapshot][leader records...] —
  // a well-formed WAL whose record stream is a byte prefix of the dead
  // leader's durable history up to applied_lsn(). Opening it durable
  // replays that history; new commits extend it. This database IS the new
  // leader.
  GraphDatabase leader(db_.options());
  CYPHER_RETURN_NOT_OK(leader.OpenDurable(std::move(durability_.wal),
                                          durability));
  return leader;
}

}  // namespace cypher::replication
