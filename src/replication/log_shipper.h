#ifndef CYPHER_REPLICATION_LOG_SHIPPER_H_
#define CYPHER_REPLICATION_LOG_SHIPPER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "replication/transport.h"
#include "storage/wal.h"

namespace cypher::replication {

struct ShipperOptions {
  /// Target segment size: a segment carries as many whole WAL records as
  /// fit under this many bytes (always at least one, so a single oversized
  /// record still ships alone).
  uint64_t segment_bytes = 64 * 1024;

  /// Retention-pin staleness cap: when non-zero and a follower's unacked
  /// backlog (durable end minus its acked LSN) exceeds this many bytes, the
  /// follower is auto-detached — its pin released, a warning counted — so a
  /// dead or stuck follower degrades gracefully instead of pinning WAL
  /// compaction forever. A detached follower that returns re-attaches
  /// normally: from its own position if retention still covers it, from a
  /// fresh snapshot otherwise. 0 (the default) never detaches.
  uint64_t max_retained_bytes = 0;
};

struct FollowerStatus {
  int id = 0;
  /// Last LSN the follower confirmed applied — the retention pin position.
  uint64_t acked_lsn = 0;
  /// Stream cursor: everything durable below this has been sent.
  uint64_t shipped_lsn = 0;
  /// Resend requests this follower has issued (wire damage or reconnects).
  uint64_t resends = 0;
  /// Wire health as reported by the follower's transport.
  LinkStatus link;
};

/// Leader-side replication: cuts the WAL's durable byte stream into
/// record-aligned, checksummed segments and ships them to each attached
/// follower over its Transport. Per follower it keeps an ack cursor (backed
/// by a WalWriter retention pin, so auto-checkpoint compaction can never
/// drop bytes a follower still needs) and a shipped cursor that a kResend
/// control frame rewinds — a damaged or dropped segment is simply re-read
/// from the log and re-sent.
///
/// The bootstrap snapshot handed to Attach is retained until the follower's
/// first ack covers it, so a snapshot frame lost on the wire can be served
/// again without consulting the database.
///
/// A transport that reports its link down (socket in backoff) is skipped by
/// Pump — cursors freeze until the follower reconnects and its hello-driven
/// resend request rewinds the stream to wherever it actually stands.
///
/// Thread-safe; Pump is called after every durable commit (and by tests /
/// the shell directly), from any thread.
class LogShipper {
 public:
  LogShipper(storage::WalWriter* wal, ShipperOptions options);
  ~LogShipper();

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Registers a follower whose state will be bootstrapped from `snapshot`,
  /// a leader graph image consistent with exactly the statements below
  /// `lsn`. The caller (the database layer) guarantees that consistency by
  /// encoding the snapshot under its execution lock. Sends the bootstrap
  /// frame immediately; returns the follower id.
  int Attach(std::shared_ptr<Transport> transport, uint64_t lsn,
             std::string snapshot);

  /// Registers a RETURNING follower that already holds every byte below
  /// `lsn` (its own durable WAL says so) — no bootstrap snapshot; the
  /// stream simply resumes at `lsn`. The caller must verify the log still
  /// serves `lsn` (WalWriter::base_lsn()); this is the reconnect fast path
  /// that makes re-attach cheap after a follower crash.
  int AttachAt(std::shared_ptr<Transport> transport, uint64_t lsn);

  /// Releases the follower's retention pin and forgets it.
  Status Detach(int id);

  /// One replication round: drain control frames (acks advance retention
  /// pins, resend requests rewind stream cursors and re-serve retained
  /// bootstraps), enforce the staleness cap, then ship every follower with
  /// a live link the durable bytes past its cursor in record-aligned
  /// segments. Transport errors are reported but leave cursors unadvanced —
  /// the next Pump retries.
  Status Pump();

  std::vector<FollowerStatus> Statuses() const;
  size_t follower_count() const;

  /// Smallest acked LSN across followers (UINT64_MAX when none) — how far
  /// back retention reaches.
  uint64_t min_acked_lsn() const;

  /// Followers auto-detached by the staleness cap since construction, and
  /// the most recent warning line (empty when none) — the shell surfaces
  /// both under `:lag`.
  uint64_t stale_detaches() const;
  std::string last_stale_warning() const;

 private:
  struct Follower {
    int id = 0;
    std::shared_ptr<Transport> transport;
    uint64_t pin_id = 0;
    uint64_t acked_lsn = 0;
    uint64_t shipped_lsn = 0;
    uint64_t resends = 0;
    /// Bootstrap frame, retained until the follower acks past it.
    std::optional<SegmentFrame> bootstrap;
  };

  /// Processes one follower's queued control frames. Holds mu_.
  void DrainControlLocked(Follower* follower);

  /// Ships [shipped_lsn, durable) to one follower. Holds mu_.
  Status ShipLocked(Follower* follower);

  /// Detaches every follower whose unacked backlog exceeds the staleness
  /// cap, releasing its pin and recording a warning. Holds mu_.
  void EnforceStalenessLocked();

  mutable std::mutex mu_;
  storage::WalWriter* wal_;
  ShipperOptions options_;
  std::vector<Follower> followers_;
  int next_id_ = 1;
  uint64_t stale_detaches_ = 0;
  std::string last_stale_warning_;
};

}  // namespace cypher::replication

#endif  // CYPHER_REPLICATION_LOG_SHIPPER_H_
