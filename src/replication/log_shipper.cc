#include "replication/log_shipper.h"

#include <algorithm>
#include <utility>

#include "common/crc32.h"

namespace cypher::replication {

LogShipper::LogShipper(storage::WalWriter* wal, ShipperOptions options)
    : wal_(wal), options_(options) {
  if (options_.segment_bytes == 0) options_.segment_bytes = 1;
}

LogShipper::~LogShipper() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Follower& f : followers_) wal_->ReleaseRetentionPin(f.pin_id);
}

int LogShipper::Attach(std::shared_ptr<Transport> transport, uint64_t lsn,
                       std::string snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  Follower f;
  f.id = next_id_++;
  f.transport = std::move(transport);
  // Pin at the bootstrap LSN: the follower never needs bytes below it (the
  // snapshot subsumes them), and compaction must hold everything after it
  // until acks move the pin forward.
  f.pin_id = wal_->RegisterRetentionPin(lsn);
  f.acked_lsn = lsn;
  f.shipped_lsn = lsn;
  SegmentFrame frame;
  frame.type = FrameType::kSnapshot;
  frame.from_lsn = 0;
  frame.to_lsn = lsn;
  frame.crc = Crc32(snapshot.data(), snapshot.size());
  frame.payload = std::move(snapshot);
  f.bootstrap = frame;
  (void)f.transport->Send(std::move(frame));
  followers_.push_back(std::move(f));
  return followers_.back().id;
}

int LogShipper::AttachAt(std::shared_ptr<Transport> transport, uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  Follower f;
  f.id = next_id_++;
  f.transport = std::move(transport);
  // The follower's own durable log covers everything below `lsn`; pin there
  // and resume the stream without a snapshot.
  f.pin_id = wal_->RegisterRetentionPin(lsn);
  f.acked_lsn = lsn;
  f.shipped_lsn = lsn;
  followers_.push_back(std::move(f));
  return followers_.back().id;
}

Status LogShipper::Detach(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = followers_.begin(); it != followers_.end(); ++it) {
    if (it->id != id) continue;
    wal_->ReleaseRetentionPin(it->pin_id);
    followers_.erase(it);
    return Status::OK();
  }
  return Status::InvalidArgument("no attached follower with id " +
                                 std::to_string(id));
}

void LogShipper::DrainControlLocked(Follower* f) {
  ControlFrame control;
  while (f->transport->PollControl(&control)) {
    if (control.type == ControlType::kAck) {
      if (control.lsn > f->acked_lsn) {
        f->acked_lsn = control.lsn;
        wal_->AdvanceRetentionPin(f->pin_id, control.lsn);
      }
      if (f->bootstrap && control.lsn >= f->bootstrap->to_lsn) {
        f->bootstrap.reset();  // bootstrap landed; stop retaining it
      }
    } else {
      // Resume the stream from the follower's applied position — never
      // below its ack (an ack is a promise the bytes landed). If the
      // bootstrap itself was lost, serve the retained copy first.
      ++f->resends;
      uint64_t from = std::max(control.lsn, f->acked_lsn);
      if (f->bootstrap && from <= f->bootstrap->to_lsn) {
        (void)f->transport->Send(*f->bootstrap);
        from = f->bootstrap->to_lsn;
      }
      f->shipped_lsn = from;
    }
  }
}

void LogShipper::EnforceStalenessLocked() {
  if (options_.max_retained_bytes == 0) return;
  uint64_t durable = wal_->durable_lsn();
  for (auto it = followers_.begin(); it != followers_.end();) {
    uint64_t retained = durable > it->acked_lsn ? durable - it->acked_lsn : 0;
    if (retained <= options_.max_retained_bytes) {
      ++it;
      continue;
    }
    // The follower has fallen further behind than the cap tolerates —
    // likely dead. Sacrifice it rather than pin compaction forever: release
    // the pin and forget it. If it ever returns, re-attach decides between
    // resuming (retention still covers its position) and a fresh snapshot.
    ++stale_detaches_;
    last_stale_warning_ =
        "follower " + std::to_string(it->id) + " auto-detached: " +
        std::to_string(retained) + " unacked bytes exceed the staleness cap " +
        std::to_string(options_.max_retained_bytes);
    wal_->ReleaseRetentionPin(it->pin_id);
    it = followers_.erase(it);
  }
}

Status LogShipper::ShipLocked(Follower* f) {
  uint64_t end = 0;
  CYPHER_ASSIGN_OR_RETURN(std::string bytes,
                          wal_->ReadDurableFrom(f->shipped_lsn, &end));
  std::string_view view = bytes;
  size_t pos = 0;
  while (pos < view.size()) {
    // Cut the next segment: whole records only, at most segment_bytes
    // (always at least one record, however large).
    size_t seg_end = pos;
    while (seg_end < view.size()) {
      size_t frame_size = storage::WalFrameSize(view.substr(seg_end));
      if (frame_size == 0) {
        // The durable prefix holds only whole records; a torn one here is
        // an engine bug, not an I/O condition.
        return Status::InternalError("torn record inside the durable prefix");
      }
      if (seg_end > pos && seg_end + frame_size - pos > options_.segment_bytes) {
        break;
      }
      seg_end += frame_size;
    }
    SegmentFrame frame;
    frame.type = FrameType::kSegment;
    frame.from_lsn = f->shipped_lsn + pos;
    frame.to_lsn = f->shipped_lsn + seg_end;
    frame.payload = std::string(view.substr(pos, seg_end - pos));
    frame.crc = Crc32(frame.payload.data(), frame.payload.size());
    CYPHER_RETURN_NOT_OK(f->transport->Send(std::move(frame)));
    pos = seg_end;
  }
  f->shipped_lsn += pos;
  return Status::OK();
}

Status LogShipper::Pump() {
  std::lock_guard<std::mutex> lock(mu_);
  Status first_error = Status::OK();
  for (Follower& f : followers_) {
    DrainControlLocked(&f);
    // A link in backoff (socket lost, reconnect pending) gets nothing
    // shipped: the bytes would only pile into a dead buffer. Its cursors
    // freeze; the reconnect hello rewinds them via a resend request.
    LinkStatus link = f.transport->link();
    if (link.state == LinkStatus::State::kConnecting ||
        link.state == LinkStatus::State::kBackoff ||
        link.state == LinkStatus::State::kClosed) {
      continue;
    }
    Status st = ShipLocked(&f);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  EnforceStalenessLocked();
  return first_error;
}

std::vector<FollowerStatus> LogShipper::Statuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FollowerStatus> out;
  out.reserve(followers_.size());
  for (const Follower& f : followers_) {
    FollowerStatus status;
    status.id = f.id;
    status.acked_lsn = f.acked_lsn;
    status.shipped_lsn = f.shipped_lsn;
    status.resends = f.resends;
    status.link = f.transport->link();
    out.push_back(std::move(status));
  }
  return out;
}

size_t LogShipper::follower_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return followers_.size();
}

uint64_t LogShipper::min_acked_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min = UINT64_MAX;
  for (const Follower& f : followers_) min = std::min(min, f.acked_lsn);
  return min;
}

uint64_t LogShipper::stale_detaches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_detaches_;
}

std::string LogShipper::last_stale_warning() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_stale_warning_;
}

}  // namespace cypher::replication
