#include "replication/wire.h"

#include <cstring>

#include "common/crc32.h"

namespace cypher::replication {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char bytes[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                   static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>(v >> shift));
  }
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::string Seal(WireKind kind, std::string payload) {
  std::string out;
  out.reserve(kWireHeaderSize + payload.size());
  out.push_back(static_cast<char>(kind));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed wire message: ") +
                                 what);
}

Status DecodePayload(WireKind kind, std::string_view p, WireMessage* out) {
  out->kind = kind;
  switch (kind) {
    case WireKind::kHello:
      if (p.size() != 16) return Malformed("hello length");
      out->token = GetU64(p.data());
      out->lsn = GetU64(p.data() + 8);
      return Status::OK();
    case WireKind::kData: {
      if (p.size() < 21) return Malformed("data header length");
      auto type = static_cast<FrameType>(static_cast<unsigned char>(p[0]));
      if (type != FrameType::kSnapshot && type != FrameType::kSegment) {
        return Malformed("segment frame type");
      }
      out->data.type = type;
      out->data.from_lsn = GetU64(p.data() + 1);
      out->data.to_lsn = GetU64(p.data() + 9);
      out->data.crc = GetU32(p.data() + 17);
      out->data.payload.assign(p.data() + 21, p.size() - 21);
      return Status::OK();
    }
    case WireKind::kControl: {
      if (p.size() != 9) return Malformed("control length");
      auto type = static_cast<ControlType>(static_cast<unsigned char>(p[0]));
      if (type != ControlType::kAck && type != ControlType::kResend) {
        return Malformed("control frame type");
      }
      out->control.type = type;
      out->control.lsn = GetU64(p.data() + 1);
      return Status::OK();
    }
    case WireKind::kHeartbeat:
      if (p.size() != 8) return Malformed("heartbeat length");
      out->clock_ms = GetU64(p.data());
      return Status::OK();
  }
  return Malformed("unknown kind");
}

}  // namespace

std::string EncodeHello(uint64_t token, uint64_t lsn) {
  std::string payload;
  payload.reserve(16);
  PutU64(&payload, token);
  PutU64(&payload, lsn);
  return Seal(WireKind::kHello, std::move(payload));
}

std::string EncodeData(const SegmentFrame& frame) {
  std::string payload;
  payload.reserve(21 + frame.payload.size());
  payload.push_back(static_cast<char>(frame.type));
  PutU64(&payload, frame.from_lsn);
  PutU64(&payload, frame.to_lsn);
  PutU32(&payload, frame.crc);
  payload += frame.payload;
  return Seal(WireKind::kData, std::move(payload));
}

std::string EncodeControl(const ControlFrame& frame) {
  std::string payload;
  payload.reserve(9);
  payload.push_back(static_cast<char>(frame.type));
  PutU64(&payload, frame.lsn);
  return Seal(WireKind::kControl, std::move(payload));
}

std::string EncodeHeartbeat(uint64_t clock_ms) {
  std::string payload;
  payload.reserve(8);
  PutU64(&payload, clock_ms);
  return Seal(WireKind::kHeartbeat, std::move(payload));
}

void WireDecoder::Feed(std::string_view bytes) {
  // Compact lazily: only once the consumed prefix dominates, so a fast
  // stream does not memmove per message.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

Result<bool> WireDecoder::Next(WireMessage* out) {
  if (!error_.ok()) return error_;
  std::string_view view = std::string_view(buffer_).substr(consumed_);
  if (view.size() < kWireHeaderSize) return false;  // torn header: wait
  auto kind = static_cast<WireKind>(static_cast<unsigned char>(view[0]));
  if (kind != WireKind::kHello && kind != WireKind::kData &&
      kind != WireKind::kControl && kind != WireKind::kHeartbeat) {
    error_ = Malformed("unknown kind (stream desync)");
    return error_;
  }
  uint32_t length = GetU32(view.data() + 1);
  uint32_t crc = GetU32(view.data() + 5);
  if (length > kMaxWirePayload) {
    error_ = Malformed("implausible length (stream desync)");
    return error_;
  }
  if (view.size() - kWireHeaderSize < length) return false;  // torn payload
  std::string_view payload = view.substr(kWireHeaderSize, length);
  if (Crc32(payload.data(), payload.size()) != crc) {
    error_ = Malformed("payload checksum");
    return error_;
  }
  Status st = DecodePayload(kind, payload, out);
  if (!st.ok()) {
    error_ = st;
    return error_;
  }
  consumed_ += kWireHeaderSize + length;
  return true;
}

}  // namespace cypher::replication
