#ifndef CYPHER_REPLICATION_WIRE_H_
#define CYPHER_REPLICATION_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "replication/transport.h"

namespace cypher::replication {

/// The socket wire format (DESIGN.md §4i). A connection is a stream of
/// self-delimiting messages:
///
///   [u8 kind][u32 length][u32 crc32][payload: length bytes]
///
/// Integers are little-endian; `crc` covers the payload end to end, so a
/// flipped bit anywhere is caught before the message is interpreted. The
/// decoder is incremental: a TCP read may end mid-header or mid-payload (a
/// torn read), and the partial bytes simply wait in the buffer for the next
/// read. Anything structurally wrong — an unknown kind, an implausible
/// length, a checksum mismatch — is an ERROR, not a wait: a byte stream
/// that desynchronizes can never resynchronize reliably, so the connection
/// is torn down and the reconnect/resend protocol recovers.
///
/// Message kinds:
///   kHello      follower -> leader, first message on every connection:
///               [u64 token][u64 lsn]. `token` identifies the follower
///               across reconnects (0 = never attached, a fresh bootstrap);
///               `lsn` is its applied position, where the stream resumes.
///   kData       leader -> follower: a SegmentFrame
///               [u8 frame-type][u64 from][u64 to][u32 seg-crc][bytes].
///   kControl    follower -> leader: a ControlFrame [u8 type][u64 lsn].
///   kHeartbeat  either direction: [u64 sender-clock-ms]. Keeps deadlines
///               fed when no data flows; carries no state.
enum class WireKind : uint8_t {
  kHello = 1,
  kData = 2,
  kControl = 3,
  kHeartbeat = 4,
};

/// One decoded wire message; which fields are meaningful depends on `kind`.
struct WireMessage {
  WireKind kind = WireKind::kHeartbeat;
  // kHello
  uint64_t token = 0;
  uint64_t lsn = 0;
  // kData
  SegmentFrame data;
  // kControl
  ControlFrame control;
  // kHeartbeat
  uint64_t clock_ms = 0;
};

/// Hard sanity cap on a single message payload. A length field above this
/// is treated as stream desync (connection torn down), not as a request to
/// allocate: segments are cut well under it, and snapshots of graphs that
/// big have no business on a single unframed message anyway.
inline constexpr uint32_t kMaxWirePayload = 1u << 30;  // 1 GiB

inline constexpr size_t kWireHeaderSize = 9;  // kind + length + crc

std::string EncodeHello(uint64_t token, uint64_t lsn);
std::string EncodeData(const SegmentFrame& frame);
std::string EncodeControl(const ControlFrame& frame);
std::string EncodeHeartbeat(uint64_t clock_ms);

/// Incremental stream decoder: Feed() appends raw socket bytes, Next() pops
/// complete messages. Torn reads are the normal case — Next() returns false
/// until the buffered prefix holds a whole message. A structural error
/// (bad kind, oversized length, CRC mismatch, malformed payload) is sticky:
/// every later Next() fails too, and the owner must drop the connection.
class WireDecoder {
 public:
  /// Appends bytes read off the socket.
  void Feed(std::string_view bytes);

  /// Pops the next complete message into `*out`. Returns false when the
  /// buffer holds no complete message (read more and try again); a non-OK
  /// status means the stream is damaged beyond recovery.
  Result<bool> Next(WireMessage* out);

  /// Bytes buffered but not yet consumed (tests size torn reads with this).
  size_t buffered() const { return buffer_.size() - consumed_; }

  /// Takes the unconsumed bytes out of the decoder (which is left empty).
  /// The server uses this when it hands an accepted connection's fd over to
  /// a follower link: bytes that arrived behind the hello in the same read
  /// must follow the fd, not die with the handshake decoder.
  std::string TakeRemaining() {
    std::string rest = buffer_.substr(consumed_);
    buffer_.clear();
    consumed_ = 0;
    return rest;
  }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  Status error_;
};

}  // namespace cypher::replication

#endif  // CYPHER_REPLICATION_WIRE_H_
