#ifndef CYPHER_VALUE_VALUE_H_
#define CYPHER_VALUE_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"

namespace cypher {

class Value;

/// Map values are ordered by key so printing and comparison are
/// deterministic.
using ValueMap = std::map<std::string, Value>;
using ValueList = std::vector<Value>;

/// A path: alternating nodes and relationships, nodes.size() == rels.size()+1.
/// Stored by id; rendering resolves ids against a graph.
struct PathValue {
  std::vector<NodeId> nodes;
  std::vector<RelId> rels;

  friend bool operator==(const PathValue& a, const PathValue& b) {
    return a.nodes == b.nodes && a.rels == b.rels;
  }
};

/// Runtime type tag of a Value.
enum class ValueType {
  kNull,
  kBool,
  kInt,
  kFloat,
  kString,
  kList,
  kMap,
  kNode,
  kRel,
  kPath,
};

/// Returns a human-readable type name ("INTEGER", "NODE", ...).
const char* ValueTypeName(ValueType type);

/// A Cypher runtime value.
///
/// Values are immutable; lists, maps and paths are shared (copy is O(1)).
/// `null` is the default-constructed value. Node and relationship values are
/// graph-entity references (ids), matching the paper's driving-table model
/// where table cells hold entity ids.
class Value {
 public:
  /// Constructs null.
  Value() : rep_(NullTag{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Float(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value List(ValueList v) {
    return Value(Rep(std::make_shared<const ValueList>(std::move(v))));
  }
  static Value Map(ValueMap v) {
    return Value(Rep(std::make_shared<const ValueMap>(std::move(v))));
  }
  static Value Node(NodeId id) { return Value(Rep(id)); }
  static Value Rel(RelId id) { return Value(Rep(id)); }
  static Value Path(PathValue p) {
    return Value(Rep(std::make_shared<const PathValue>(std::move(p))));
  }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_float() const { return type() == ValueType::kFloat; }
  bool is_number() const { return is_int() || is_float(); }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_list() const { return type() == ValueType::kList; }
  bool is_map() const { return type() == ValueType::kMap; }
  bool is_node() const { return type() == ValueType::kNode; }
  bool is_rel() const { return type() == ValueType::kRel; }
  bool is_path() const { return type() == ValueType::kPath; }

  /// Accessors. Calling the wrong accessor is a programming error
  /// (std::get aborts via exception; executors type-check first).
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsFloat() const { return std::get<double>(rep_); }
  /// Numeric value widened to double; valid for is_number().
  double AsNumber() const { return is_int() ? static_cast<double>(AsInt()) : AsFloat(); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const ValueList& AsList() const { return *std::get<ListPtr>(rep_); }
  const ValueMap& AsMap() const { return *std::get<MapPtr>(rep_); }
  NodeId AsNode() const { return std::get<NodeId>(rep_); }
  RelId AsRel() const { return std::get<RelId>(rep_); }
  const PathValue& AsPath() const { return *std::get<PathPtr>(rep_); }

  /// Graph-independent rendering: entities print as "Node(3)" / "Rel(7)".
  /// Use RenderValue (exec/render.h) for the full `(:Label {k:v})` form.
  std::string ToString() const;

 private:
  struct NullTag {
    friend bool operator==(NullTag, NullTag) { return true; }
  };
  using ListPtr = std::shared_ptr<const ValueList>;
  using MapPtr = std::shared_ptr<const ValueMap>;
  using PathPtr = std::shared_ptr<const PathValue>;
  using Rep = std::variant<NullTag, bool, int64_t, double, std::string,
                           ListPtr, MapPtr, NodeId, RelId, PathPtr>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace cypher

#endif  // CYPHER_VALUE_VALUE_H_
