#ifndef CYPHER_VALUE_COMPARE_H_
#define CYPHER_VALUE_COMPARE_H_

#include <cstdint>

#include "value/value.h"

namespace cypher {

/// Three-valued logic truth value (SQL/Cypher ternary logic).
enum class Tri { kFalse = 0, kTrue = 1, kNull = 2 };

inline Tri TriFromBool(bool b) { return b ? Tri::kTrue : Tri::kFalse; }

/// Logical connectives under ternary logic.
Tri TriAnd(Tri a, Tri b);
Tri TriOr(Tri a, Tri b);
Tri TriXor(Tri a, Tri b);
Tri TriNot(Tri a);

/// Cypher `=` comparison.
///
/// Rules (documented simplification of openCypher, sufficient for the paper):
///  * any operand null -> kNull;
///  * numbers compare numerically across int/float;
///  * same-type bool/string compare by value;
///  * nodes/relationships compare by identity, paths by their id sequences;
///  * lists: different lengths -> kFalse; otherwise elementwise with null
///    propagation (any element-pair kFalse -> kFalse, else any kNull -> kNull);
///  * maps: analogous, over the union of keys (a key missing on one side
///    makes the comparison kFalse);
///  * values of incomparable types -> kFalse.
Tri CypherEquals(const Value& a, const Value& b);

/// Cypher `<` comparison: defined within numbers, within strings, and within
/// booleans (false < true). Nulls or cross-family comparisons -> kNull.
Tri CypherLess(const Value& a, const Value& b);

/// Equivalence used by DISTINCT, aggregation grouping, and the Grouping /
/// Collapse MERGE semantics (paper Sections 6 and 8): like CypherEquals but
/// total — null is equivalent to null, and values of different types are
/// simply not equivalent. This is what lets Example 5 group the rows whose
/// pid is null into one bucket.
bool GroupEquals(const Value& a, const Value& b);

/// Hash compatible with GroupEquals (group-equal values hash identically;
/// in particular 1 and 1.0 share a hash).
uint64_t HashValue(const Value& v);

/// Total deterministic order used by ORDER BY, following Neo4j's documented
/// global sort order: Map < Node < Relationship < List < Path < String <
/// Boolean < Number, with null ordered last. Returns <0, 0, >0.
int TotalOrderCompare(const Value& a, const Value& b);

}  // namespace cypher

#endif  // CYPHER_VALUE_COMPARE_H_
