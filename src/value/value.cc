#include "value/value.h"

#include "common/strings.h"

namespace cypher {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOLEAN";
    case ValueType::kInt:
      return "INTEGER";
    case ValueType::kFloat:
      return "FLOAT";
    case ValueType::kString:
      return "STRING";
    case ValueType::kList:
      return "LIST";
    case ValueType::kMap:
      return "MAP";
    case ValueType::kNode:
      return "NODE";
    case ValueType::kRel:
      return "RELATIONSHIP";
    case ValueType::kPath:
      return "PATH";
  }
  return "UNKNOWN";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kFloat:
      return FormatDouble(AsFloat());
    case ValueType::kString:
      return QuoteString(AsString());
    case ValueType::kList: {
      std::string out = "[";
      bool first = true;
      for (const Value& v : AsList()) {
        if (!first) out += ", ";
        first = false;
        out += v.ToString();
      }
      out += "]";
      return out;
    }
    case ValueType::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : AsMap()) {
        if (!first) out += ", ";
        first = false;
        out += k;
        out += ": ";
        out += v.ToString();
      }
      out += "}";
      return out;
    }
    case ValueType::kNode:
      return "Node(" + std::to_string(AsNode().value) + ")";
    case ValueType::kRel:
      return "Rel(" + std::to_string(AsRel().value) + ")";
    case ValueType::kPath: {
      const PathValue& p = AsPath();
      std::string out = "Path(";
      for (size_t i = 0; i < p.nodes.size(); ++i) {
        if (i > 0) {
          out += "-[" + std::to_string(p.rels[i - 1].value) + "]-";
        }
        out += std::to_string(p.nodes[i].value);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace cypher
