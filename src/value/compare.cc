#include "value/compare.h"

#include <cmath>

#include "common/check.h"

namespace cypher {

Tri TriAnd(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kNull || b == Tri::kNull) return Tri::kNull;
  return Tri::kTrue;
}

Tri TriOr(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kNull || b == Tri::kNull) return Tri::kNull;
  return Tri::kFalse;
}

Tri TriXor(Tri a, Tri b) {
  if (a == Tri::kNull || b == Tri::kNull) return Tri::kNull;
  return TriFromBool((a == Tri::kTrue) != (b == Tri::kTrue));
}

Tri TriNot(Tri a) {
  if (a == Tri::kNull) return Tri::kNull;
  return a == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
}

namespace {

bool NumericEquals(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) return a.AsInt() == b.AsInt();
  return a.AsNumber() == b.AsNumber();
}

}  // namespace

Tri CypherEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Tri::kNull;
  if (a.is_number() && b.is_number()) return TriFromBool(NumericEquals(a, b));
  if (a.type() != b.type()) return Tri::kFalse;
  switch (a.type()) {
    case ValueType::kBool:
      return TriFromBool(a.AsBool() == b.AsBool());
    case ValueType::kString:
      return TriFromBool(a.AsString() == b.AsString());
    case ValueType::kNode:
      return TriFromBool(a.AsNode() == b.AsNode());
    case ValueType::kRel:
      return TriFromBool(a.AsRel() == b.AsRel());
    case ValueType::kPath:
      return TriFromBool(a.AsPath() == b.AsPath());
    case ValueType::kList: {
      const ValueList& la = a.AsList();
      const ValueList& lb = b.AsList();
      if (la.size() != lb.size()) return Tri::kFalse;
      Tri acc = Tri::kTrue;
      for (size_t i = 0; i < la.size(); ++i) {
        Tri t = CypherEquals(la[i], lb[i]);
        if (t == Tri::kFalse) return Tri::kFalse;
        acc = TriAnd(acc, t);
      }
      return acc;
    }
    case ValueType::kMap: {
      const ValueMap& ma = a.AsMap();
      const ValueMap& mb = b.AsMap();
      if (ma.size() != mb.size()) return Tri::kFalse;
      Tri acc = Tri::kTrue;
      auto ita = ma.begin();
      auto itb = mb.begin();
      for (; ita != ma.end(); ++ita, ++itb) {
        if (ita->first != itb->first) return Tri::kFalse;
        Tri t = CypherEquals(ita->second, itb->second);
        if (t == Tri::kFalse) return Tri::kFalse;
        acc = TriAnd(acc, t);
      }
      return acc;
    }
    default:
      CYPHER_CHECK(false && "unreachable value type in CypherEquals");
  }
  return Tri::kNull;
}

Tri CypherLess(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Tri::kNull;
  if (a.is_number() && b.is_number()) {
    if (a.is_int() && b.is_int()) return TriFromBool(a.AsInt() < b.AsInt());
    return TriFromBool(a.AsNumber() < b.AsNumber());
  }
  if (a.is_string() && b.is_string()) {
    return TriFromBool(a.AsString() < b.AsString());
  }
  if (a.is_bool() && b.is_bool()) {
    return TriFromBool(!a.AsBool() && b.AsBool());
  }
  return Tri::kNull;
}

bool GroupEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_number() && b.is_number()) return NumericEquals(a, b);
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kBool:
      return a.AsBool() == b.AsBool();
    case ValueType::kString:
      return a.AsString() == b.AsString();
    case ValueType::kNode:
      return a.AsNode() == b.AsNode();
    case ValueType::kRel:
      return a.AsRel() == b.AsRel();
    case ValueType::kPath:
      return a.AsPath() == b.AsPath();
    case ValueType::kList: {
      const ValueList& la = a.AsList();
      const ValueList& lb = b.AsList();
      if (la.size() != lb.size()) return false;
      for (size_t i = 0; i < la.size(); ++i) {
        if (!GroupEquals(la[i], lb[i])) return false;
      }
      return true;
    }
    case ValueType::kMap: {
      const ValueMap& ma = a.AsMap();
      const ValueMap& mb = b.AsMap();
      if (ma.size() != mb.size()) return false;
      auto ita = ma.begin();
      auto itb = mb.begin();
      for (; ita != ma.end(); ++ita, ++itb) {
        if (ita->first != itb->first) return false;
        if (!GroupEquals(ita->second, itb->second)) return false;
      }
      return true;
    }
    default:
      CYPHER_CHECK(false && "unreachable value type in GroupEquals");
  }
  return false;
}

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashDoubleCanonical(double d) {
  // Integral doubles hash like the equivalent int so 1 and 1.0 group
  // together (GroupEquals compatibility).
  if (d == std::floor(d) && std::fabs(d) < 9.2e18) {
    return static_cast<uint64_t>(static_cast<int64_t>(d));
  }
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t HashValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0xA5A5A5A5A5A5A5A5ULL;
    case ValueType::kBool:
      return v.AsBool() ? 3 : 5;
    case ValueType::kInt:
      return Mix(1, static_cast<uint64_t>(v.AsInt()));
    case ValueType::kFloat:
      return Mix(1, HashDoubleCanonical(v.AsFloat()));
    case ValueType::kString: {
      uint64_t h = 7;
      for (char c : v.AsString()) h = Mix(h, static_cast<unsigned char>(c));
      return h;
    }
    case ValueType::kNode:
      return Mix(11, v.AsNode().value);
    case ValueType::kRel:
      return Mix(13, v.AsRel().value);
    case ValueType::kPath: {
      uint64_t h = 17;
      for (NodeId n : v.AsPath().nodes) h = Mix(h, n.value);
      for (RelId r : v.AsPath().rels) h = Mix(h, r.value);
      return h;
    }
    case ValueType::kList: {
      uint64_t h = 19;
      for (const Value& e : v.AsList()) h = Mix(h, HashValue(e));
      return h;
    }
    case ValueType::kMap: {
      uint64_t h = 23;
      for (const auto& [k, e] : v.AsMap()) {
        for (char c : k) h = Mix(h, static_cast<unsigned char>(c));
        h = Mix(h, HashValue(e));
      }
      return h;
    }
  }
  return 0;
}

namespace {

/// Rank in Neo4j's global sort order; null sorts last.
int TypeRank(const Value& v) {
  switch (v.type()) {
    case ValueType::kMap:
      return 0;
    case ValueType::kNode:
      return 1;
    case ValueType::kRel:
      return 2;
    case ValueType::kList:
      return 3;
    case ValueType::kPath:
      return 4;
    case ValueType::kString:
      return 5;
    case ValueType::kBool:
      return 6;
    case ValueType::kInt:
    case ValueType::kFloat:
      return 7;
    case ValueType::kNull:
      return 8;
  }
  return 9;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int TotalOrderCompare(const Value& a, const Value& b) {
  int ra = TypeRank(a);
  int rb = TypeRank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return Cmp(a.AsBool(), b.AsBool());
    case ValueType::kInt:
      if (b.is_int()) return Cmp(a.AsInt(), b.AsInt());
      return Cmp(a.AsNumber(), b.AsNumber());
    case ValueType::kFloat:
      return Cmp(a.AsNumber(), b.AsNumber());
    case ValueType::kString:
      return Cmp(a.AsString(), b.AsString());
    case ValueType::kNode:
      return Cmp(a.AsNode().value, b.AsNode().value);
    case ValueType::kRel:
      return Cmp(a.AsRel().value, b.AsRel().value);
    case ValueType::kPath: {
      const PathValue& pa = a.AsPath();
      const PathValue& pb = b.AsPath();
      if (int c = Cmp(pa.nodes.size(), pb.nodes.size()); c != 0) return c;
      for (size_t i = 0; i < pa.nodes.size(); ++i) {
        if (int c = Cmp(pa.nodes[i].value, pb.nodes[i].value); c != 0) return c;
      }
      for (size_t i = 0; i < pa.rels.size(); ++i) {
        if (int c = Cmp(pa.rels[i].value, pb.rels[i].value); c != 0) return c;
      }
      return 0;
    }
    case ValueType::kList: {
      const ValueList& la = a.AsList();
      const ValueList& lb = b.AsList();
      size_t n = std::min(la.size(), lb.size());
      for (size_t i = 0; i < n; ++i) {
        if (int c = TotalOrderCompare(la[i], lb[i]); c != 0) return c;
      }
      return Cmp(la.size(), lb.size());
    }
    case ValueType::kMap: {
      const ValueMap& ma = a.AsMap();
      const ValueMap& mb = b.AsMap();
      auto ita = ma.begin();
      auto itb = mb.begin();
      for (; ita != ma.end() && itb != mb.end(); ++ita, ++itb) {
        if (int c = Cmp(ita->first, itb->first); c != 0) return c;
        if (int c = TotalOrderCompare(ita->second, itb->second); c != 0) {
          return c;
        }
      }
      return Cmp(ma.size(), mb.size());
    }
  }
  return 0;
}

}  // namespace cypher
