#ifndef CYPHER_MATCH_MATCHER_H_
#define CYPHER_MATCH_MATCHER_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ast/pattern.h"
#include "common/result.h"
#include "eval/env.h"
#include "match/compiled_pattern.h"

namespace cypher {

// MatchMode lives in eval/env.h (part of EvalContext so expression-level
// pattern predicates use the session's matching mode).

struct MatchOptions {
  MatchMode mode = MatchMode::kRelUnique;
  /// Worker budget for fanning one var-length expansion or shortest-path
  /// BFS level out across the shared thread pool; 0/1 runs the walk
  /// sequentially. Set only by the parallel executor (expand mode) — the
  /// graph must be in a parallel-read region while a match with
  /// expand_workers > 1 runs. Emission order is byte-identical either way.
  size_t expand_workers = 0;
  /// The pinned committed epoch this match reads (0 = latest state / no
  /// MVCC session). Set from EvalOptions::read_pin by ExecContext::Match;
  /// fanned-out helpers inherit the actual pin through the thread pool, so
  /// this field's job is plan identity: cached match plans compiled under a
  /// pin are stamped with it and never shared across epochs.
  uint64_t snapshot_epoch = 0;
};

/// Variable assignment produced by one successful match: the bindings added
/// on top of the input record, in deterministic order (pattern syntactic
/// order, first occurrence).
class MatchAssignment {
 public:
  void Push(const std::string& name, Value value) {
    entries_.emplace_back(name, std::move(value));
  }
  void PopTo(size_t size) { entries_.resize(size); }
  size_t size() const { return entries_.size(); }

  /// Looks up a variable in this assignment only; nullptr when absent.
  const Value* Find(std::string_view name) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

  const std::vector<std::pair<std::string, Value>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

/// Receives each complete match. Return false to stop enumeration early
/// (used by MERGE's existence checks), or an error Status to abort.
using MatchSink = std::function<Result<bool>(const MatchAssignment&)>;

/// Enumerates all matches of a conjunction of path patterns in `ctx.graph`,
/// consistent with the already-bound variables in `bindings` (the driving
/// table record). Matches are emitted in a deterministic order (ascending
/// entity ids at every choice point), which the legacy executors rely on
/// for reproducible anomaly demonstrations.
///
/// Property expressions inside patterns are evaluated against `bindings`
/// and compared with CypherEquals: a filter value of null never matches
/// (exactly why Example 5's null-keyed records always fall through to
/// MERGE's create branch).
Status MatchPatterns(const EvalContext& ctx, const Bindings& bindings,
                     const std::vector<PathPattern>& patterns,
                     const MatchOptions& options, const MatchSink& sink);

/// Same, over an already-compiled match (see CompileMatch). Executors that
/// drive many records through one clause compile once and call this per
/// record; MatchPatterns is the compile-per-call convenience wrapper.
/// `bindings` must bind the same variables as the compile-time environment
/// (boundness is a column property) but may hold different row values.
Status MatchCompiled(const EvalContext& ctx, const Bindings& bindings,
                     const CompiledMatch& compiled, const MatchOptions& options,
                     const MatchSink& sink);

/// A contiguous slice [begin, end) of the first path's anchor-scan domain:
/// label-index bucket positions for a kLabelScan anchor, node slots for a
/// kAllScan anchor (see AnchorScanDomain). The parallel executor splits the
/// domain into fixed-size morsels; concatenating every morsel's matches in
/// range order is byte-identical to the unrestricted enumeration.
struct AnchorMorsel {
  size_t begin = 0;
  size_t end = 0;
};

/// The partitionable domain size of `compiled`'s first path: the label
/// bucket size (kLabelScan), the node-slot capacity (kAllScan), or 0 when
/// the anchor is not a scan (bound / index / transient-hash anchors probe
/// value-dependent candidate sets, which are already cheap). 0 also when
/// the match is impossible or has no paths.
size_t AnchorScanDomain(const PropertyGraph& graph,
                        const CompiledMatch& compiled);

/// MatchCompiled restricted to one anchor morsel: only start candidates of
/// the FIRST path whose domain position falls in `morsel` are enumerated
/// (later paths of the conjunction enumerate in full — partitioning the
/// outermost choice point partitions the whole match set). Requires
/// AnchorScanDomain(graph, compiled) > 0.
Status MatchCompiledMorsel(const EvalContext& ctx, const Bindings& bindings,
                           const CompiledMatch& compiled,
                           const MatchOptions& options,
                           const AnchorMorsel& morsel, const MatchSink& sink);

/// True if at least one match exists.
Result<bool> HasMatch(const EvalContext& ctx, const Bindings& bindings,
                      const std::vector<PathPattern>& patterns,
                      const MatchOptions& options);

}  // namespace cypher

#endif  // CYPHER_MATCH_MATCHER_H_
