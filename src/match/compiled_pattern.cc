#include "match/compiled_pattern.h"

#include <algorithm>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "eval/evaluator.h"
#include "value/compare.h"

namespace cypher {

namespace {

using BoundFn = std::function<bool(std::string_view)>;

/// True when the expression's value cannot depend on the driving record or
/// the graph: safe to fold once per clause. Functions are excluded
/// wholesale (rand() is non-deterministic, aggregates need a scope), as is
/// anything that reads variables or graph entities.
bool IsConstantExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
      return true;
    case ExprKind::kProperty:
      return IsConstantExpr(*static_cast<const PropertyExpr&>(e).object);
    case ExprKind::kUnary:
      return IsConstantExpr(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return IsConstantExpr(*b.left) && IsConstantExpr(*b.right);
    }
    case ExprKind::kIsNull:
      return IsConstantExpr(*static_cast<const IsNullExpr&>(e).operand);
    case ExprKind::kList: {
      for (const ExprPtr& item : static_cast<const ListExpr&>(e).items) {
        if (!IsConstantExpr(*item)) return false;
      }
      return true;
    }
    case ExprKind::kMap: {
      for (const auto& [key, value] : static_cast<const MapExpr&>(e).entries) {
        if (!IsConstantExpr(*value)) return false;
      }
      return true;
    }
    case ExprKind::kIndex: {
      const auto& i = static_cast<const IndexExpr&>(e);
      return IsConstantExpr(*i.object) && IsConstantExpr(*i.index);
    }
    case ExprKind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      for (const auto& [cond, value] : c.whens) {
        if (!IsConstantExpr(*cond) || !IsConstantExpr(*value)) return false;
      }
      return c.otherwise == nullptr || IsConstantExpr(*c.otherwise);
    }
    default:
      // kVariable, kHasLabels, kFunction, kCountStar, comprehensions,
      // quantifiers, reduce, pattern predicates, map projections.
      return false;
  }
}

RelDirection Flip(RelDirection d) {
  switch (d) {
    case RelDirection::kLeftToRight:
      return RelDirection::kRightToLeft;
    case RelDirection::kRightToLeft:
      return RelDirection::kLeftToRight;
    case RelDirection::kUndirected:
      return RelDirection::kUndirected;
  }
  return d;
}

class Compiler {
 public:
  Compiler(const EvalContext& ctx, const Bindings& fold_env,
           const BoundFn& is_bound, const CompileMatchHints& hints)
      : ctx_(ctx),
        graph_(*ctx.graph),
        fold_env_(fold_env),
        is_bound_(is_bound),
        hints_(hints) {}

  CompiledMatch Compile(const std::vector<PathPattern>& patterns) {
    CompiledMatch out;
    out.paths.reserve(patterns.size());
    for (const PathPattern& pattern : patterns) {
      out.paths.push_back(CompilePath(pattern));
      ClassifyVariables(&out.paths.back());
      out.impossible |= out.paths.back().impossible;
      // ClassifyVariables added this pattern's variables to earlier_vars_,
      // so later patterns in the conjunction see them as bound (they anchor
      // as kBound / check equality instead of scanning fresh).
    }
    out.memo_slots = memo_slots_;
    out.input_slots = input_slots_;
    ProfileExpansion(&out);
    return out;
  }

 private:
  /// Classifies the conjunction's var-length / shortest-path legs for the
  /// parallel executor (see CompiledMatch::expand_safe) and estimates their
  /// per-start fan-out work. The estimate only has to rank expansions
  /// against parallel_min_cost, so a capped average-degree power is enough.
  void ProfileExpansion(CompiledMatch* out) const {
    constexpr size_t kCostCap = size_t{1} << 20;
    constexpr int64_t kHopsCap = 8;
    size_t nodes = graph_.num_nodes();
    size_t degree =
        nodes == 0 ? 0 : (2 * graph_.num_rels() + nodes - 1) / nodes;
    for (const CompiledPath& path : out->paths) {
      if (path.impossible) continue;
      if (path.source->function != PathFunction::kNone) {
        // BFS levels split across workers: work is bounded by one sweep of
        // the reachable graph per start candidate.
        out->expand_safe = true;
        out->expand_cost = std::max(
            out->expand_cost, std::min(kCostCap, nodes + graph_.num_rels()));
        continue;
      }
      for (const auto& [rel, node] : path.steps) {
        if (!rel.source->var_length) continue;
        if (!rel.source->variable.empty() &&
            rel.var_class != VarClass::kBind) {
          continue;  // already-bound list variable: semantic error, no walk
        }
        int64_t hops = rel.source->max_hops < 0
                           ? kHopsCap
                           : std::min(rel.source->max_hops, kHopsCap);
        size_t cost = 1;
        for (int64_t h = 0; h < hops; ++h) {
          cost = std::min(kCostCap, cost * std::max<size_t>(degree, 2));
        }
        out->expand_safe = true;
        out->expand_cost = std::max(out->expand_cost, cost);
      }
    }
  }

  bool Bound(const std::string& name) const {
    return !name.empty() &&
           (earlier_vars_.count(name) > 0 || is_bound_(name));
  }

  /// Assigns a VarClass to every variable occurrence of the path, walked in
  /// execution order (after any reversal), so the engine never resolves a
  /// variable name inside a candidate loop. Driving-record variables share
  /// one cache slot per name; variables the path binds enter earlier_vars_.
  template <typename Compiled>
  void Classify(Compiled* c) {
    const std::string& name = c->source->variable;
    if (name.empty()) {
      c->var_class = VarClass::kNone;
    } else if (is_bound_(name)) {
      c->var_class = VarClass::kCheckInput;
      auto [it, inserted] = input_slot_of_.try_emplace(name, input_slots_);
      if (inserted) ++input_slots_;
      c->input_slot = it->second;
    } else if (earlier_vars_.count(name) > 0) {
      c->var_class = VarClass::kCheckLocal;
    } else {
      c->var_class = VarClass::kBind;
      earlier_vars_.insert(name);
    }
  }

  void ClassifyVariables(CompiledPath* path) {
    Classify(&path->start);
    for (auto& [rel, node] : path->steps) {
      Classify(&rel);
      Classify(&node);
    }
    const std::string& path_var = path->source->path_variable;
    if (!path_var.empty()) {
      // Checked after the entity variables on purpose: `p = (p)-->()`
      // conflicts with its own start binding.
      path->path_var_conflict = Bound(path_var);
      earlier_vars_.insert(path_var);
    }
  }

  std::vector<CompiledFilter> CompileFilters(
      const std::vector<std::pair<std::string, ExprPtr>>& props) {
    std::vector<CompiledFilter> out;
    out.reserve(props.size());
    for (const auto& [key, expr] : props) {
      CompiledFilter f;
      f.key = graph_.FindKey(key);
      f.expr = expr.get();
      if (IsConstantExpr(*expr)) {
        Result<Value> folded = Evaluate(ctx_, fold_env_, *expr);
        // A failed fold (e.g. a literal 1/0) stays lazy so the error still
        // surfaces only when a candidate actually reaches the filter.
        if (folded.ok()) {
          f.is_constant = true;
          f.constant = *std::move(folded);
        }
      }
      if (!f.is_constant) f.memo_slot = memo_slots_++;
      out.push_back(std::move(f));
    }
    return out;
  }

  CompiledNode CompileNode(const NodePattern& pattern) {
    CompiledNode out;
    out.source = &pattern;
    out.labels.reserve(pattern.labels.size());
    for (const std::string& label : pattern.labels) {
      Symbol sym = graph_.FindLabel(label);
      if (sym == kNoSymbol) {
        out.impossible = true;  // label never created: nothing can match
      } else {
        out.labels.push_back(sym);
      }
    }
    out.filters = CompileFilters(pattern.properties);
    return out;
  }

  CompiledRel CompileRel(const RelPattern& pattern) {
    CompiledRel out;
    out.source = &pattern;
    out.direction = pattern.direction;
    out.types.reserve(pattern.types.size());
    for (const std::string& type : pattern.types) {
      Symbol sym = graph_.FindType(type);
      if (sym != kNoSymbol) out.types.push_back(sym);
    }
    if (!pattern.types.empty() && out.types.empty()) out.impossible = true;
    out.filters = CompileFilters(pattern.properties);
    return out;
  }

  /// Cheapest access path for seeding the pattern at `node`. Candidates
  /// returned by any kind are a superset of the true matches (NodeMatches
  /// re-checks everything), so the choice affects cost only.
  AnchorPlan PlanAnchor(const CompiledNode& node) {
    AnchorPlan plan;
    if (Bound(node.source->variable)) {
      plan.kind = AnchorKind::kBound;
      plan.cost = 0;
      return plan;
    }
    // Property indexes are unversioned writer-side structures (IndexLookup
    // asserts no pin is active), so snapshot-session compiles never anchor
    // on them — they fall through to pin-aware label/all scans instead.
    if (ctx_.read_pin == nullptr) {
      for (Symbol label : node.labels) {
        for (size_t i = 0; i < node.filters.size(); ++i) {
          Symbol key = node.filters[i].key;
          if (key == kNoSymbol || !graph_.HasIndex(label, key)) continue;
          plan.kind = AnchorKind::kIndex;
          plan.label = label;
          plan.key = key;
          plan.index_filter = i;
          plan.cost = 1;
          return plan;
        }
      }
    }
    Symbol scan_label = kNoSymbol;
    size_t scan_count = graph_.num_nodes();
    if (!node.labels.empty()) {
      scan_label = node.labels.front();
      scan_count = graph_.LabelCount(scan_label);
      for (Symbol label : node.labels) {
        size_t count = graph_.LabelCount(label);
        if (count < scan_count) {
          scan_label = label;
          scan_count = count;
        }
      }
    }
    // Repeated equality probe with no real index: when the clause drives
    // enough records over a large enough domain, one O(domain) hash build
    // beats per-record O(domain) scans (the BM_LookupJoin pathology). The
    // hash itself is built later, once the path's orientation is settled.
    if (hints_.num_rows >= kTransientIndexMinRows &&
        scan_count >= kTransientIndexMinDomain) {
      for (size_t i = 0; i < node.filters.size(); ++i) {
        if (node.filters[i].key == kNoSymbol) continue;
        plan.kind = AnchorKind::kTransientIndex;
        plan.label = scan_label;
        plan.key = node.filters[i].key;
        plan.index_filter = i;
        plan.cost = 2;
        return plan;
      }
    }
    if (scan_label != kNoSymbol) {
      plan.kind = AnchorKind::kLabelScan;
      plan.label = scan_label;
      plan.cost = 2 + scan_count;
      return plan;
    }
    plan.kind = AnchorKind::kAllScan;
    plan.cost = 2 + graph_.num_nodes();
    return plan;
  }

  /// Builds the hash for a chosen kTransientIndex anchor: buckets every
  /// domain node by HashValue of its `key` property, ascending ids within a
  /// bucket (ForEach* scan order), skipping absent values.
  std::shared_ptr<const TransientIndex> BuildTransientIndex(
      const AnchorPlan& plan) const {
    auto index = std::make_shared<TransientIndex>();
    index->key = plan.key;
    auto add = [&](NodeId id) {
      const Value& v = graph_.node(id).props.Get(plan.key);
      if (!v.is_null()) index->buckets[HashValue(v)].push_back(id);
      return true;
    };
    if (plan.label != kNoSymbol) {
      graph_.ForEachNodeWithLabel(plan.label, add);
    } else {
      graph_.ForEachNode(add);
    }
    return index;
  }

  CompiledPath CompilePath(const PathPattern& pattern) {
    CompiledPath out;
    out.source = &pattern;
    std::vector<CompiledNode> nodes;
    std::vector<CompiledRel> rels;
    nodes.reserve(pattern.steps.size() + 1);
    rels.reserve(pattern.steps.size());
    nodes.push_back(CompileNode(pattern.start));
    bool var_length = false;
    for (const auto& [rel, node] : pattern.steps) {
      rels.push_back(CompileRel(rel));
      var_length |= rel.var_length;
      nodes.push_back(CompileNode(node));
    }
    for (const CompiledNode& n : nodes) out.impossible |= n.impossible;
    for (const CompiledRel& r : rels) out.impossible |= r.impossible;

    AnchorPlan forward = PlanAnchor(nodes.front());
    // Run the chain from its far end when that anchor is strictly cheaper.
    // Ties keep forward order (preserves the seed's match emission order);
    // variable-length steps and path functions have their own start logic
    // and never reverse.
    if (pattern.function == PathFunction::kNone && !pattern.steps.empty() &&
        !var_length) {
      AnchorPlan backward = PlanAnchor(nodes.back());
      if (backward.cost < forward.cost) {
        out.reversed = true;
        out.anchor = backward;
        out.start = std::move(nodes.back());
        for (size_t i = nodes.size() - 1; i-- > 0;) {
          CompiledRel rel = std::move(rels[i]);
          rel.direction = Flip(rel.direction);
          out.steps.emplace_back(std::move(rel), std::move(nodes[i]));
        }
        FinishAnchor(&out);
        return out;
      }
    }
    out.anchor = forward;
    out.start = std::move(nodes.front());
    for (size_t i = 0; i < rels.size(); ++i) {
      out.steps.emplace_back(std::move(rels[i]), std::move(nodes[i + 1]));
    }
    FinishAnchor(&out);
    return out;
  }

  /// Post-orientation anchor work: the transient hash is only built for the
  /// end that actually anchors (both ends may have planned one) and never
  /// for impossible paths, which short-circuit before enumerating.
  void FinishAnchor(CompiledPath* path) const {
    if (path->anchor.kind == AnchorKind::kTransientIndex &&
        !path->impossible) {
      path->transient = BuildTransientIndex(path->anchor);
    }
  }

  const EvalContext& ctx_;
  const PropertyGraph& graph_;
  const Bindings& fold_env_;
  const BoundFn& is_bound_;
  const CompileMatchHints& hints_;
  std::unordered_set<std::string> earlier_vars_;
  std::unordered_map<std::string, size_t> input_slot_of_;
  size_t memo_slots_ = 0;
  size_t input_slots_ = 0;
};

/// Names the first never-interned label or type of a pattern, for EXPLAIN's
/// "never matches" note.
std::string FirstUnknownName(const PropertyGraph& graph,
                             const PathPattern& pattern) {
  auto check_node = [&](const NodePattern& node) -> std::string {
    for (const std::string& label : node.labels) {
      if (graph.FindLabel(label) == kNoSymbol) {
        return "label :" + label + " never created";
      }
    }
    return "";
  };
  std::string found = check_node(pattern.start);
  if (!found.empty()) return found;
  for (const auto& [rel, node] : pattern.steps) {
    bool any = rel.types.empty();
    for (const std::string& type : rel.types) {
      if (graph.FindType(type) != kNoSymbol) {
        any = true;
        break;
      }
    }
    if (!any) return "type :" + rel.types.front() + " never created";
    found = check_node(node);
    if (!found.empty()) return found;
  }
  return "unsatisfiable pattern";
}

}  // namespace

CompiledMatch CompileMatch(const EvalContext& ctx, const Bindings& bindings,
                           const std::vector<PathPattern>& patterns,
                           const CompileMatchHints& hints) {
  BoundFn is_bound = [&bindings](std::string_view name) {
    return bindings.IsBound(name);
  };
  return Compiler(ctx, bindings, is_bound, hints).Compile(patterns);
}

CompiledMatch CompileMatchForExplain(
    const EvalContext& ctx, const std::unordered_set<std::string>& bound,
    const std::vector<PathPattern>& patterns) {
  Bindings empty;
  BoundFn is_bound = [&bound](std::string_view name) {
    return bound.count(std::string(name)) > 0;
  };
  // Default hints (num_rows = 1): EXPLAIN never plans (or pays for) a
  // transient hash — the row count is unknown without executing.
  return Compiler(ctx, empty, is_bound, {}).Compile(patterns);
}

std::string DescribeMatchPlan(const PropertyGraph& graph,
                              const CompiledMatch& compiled) {
  std::string out;
  for (const CompiledPath& path : compiled.paths) {
    if (!out.empty()) out += "; ";
    if (path.impossible) {
      out += "never matches: " + FirstUnknownName(graph, *path.source);
      continue;
    }
    if (path.reversed) out += "reversed, ";
    switch (path.anchor.kind) {
      case AnchorKind::kBound:
        out += "bound: '" + path.start.source->variable + "'";
        break;
      case AnchorKind::kIndex:
        out += "index: :" + graph.LabelName(path.anchor.label) + "(" +
               graph.KeyName(path.anchor.key) + ")";
        break;
      case AnchorKind::kTransientIndex:
        out += "transient hash: ";
        if (path.anchor.label != kNoSymbol) {
          out += ":" + graph.LabelName(path.anchor.label);
        } else {
          out += "all nodes";
        }
        out += "(" + graph.KeyName(path.anchor.key) + ")";
        break;
      case AnchorKind::kLabelScan:
        out += "scan: label :" + graph.LabelName(path.anchor.label) + " (~" +
               std::to_string(graph.LabelCount(path.anchor.label)) +
               " nodes)";
        break;
      case AnchorKind::kAllScan:
        out += "scan: all nodes (~" + std::to_string(graph.num_nodes()) + ")";
        break;
    }
    if (!path.steps.empty()) {
      out += ", expand " + std::to_string(path.steps.size()) +
             (path.steps.size() == 1 ? " step" : " steps");
    }
  }
  return out;
}

}  // namespace cypher
