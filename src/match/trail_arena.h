#ifndef CYPHER_MATCH_TRAIL_ARENA_H_
#define CYPHER_MATCH_TRAIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "match/matcher.h"

namespace cypher {

/// One frontier slice of a parallelized var-length expansion: the walk
/// prefix (relationship hops plus the nodes they reached) from the
/// expansion's start node to the resume point. A worker restores this
/// state into a private engine, so no trail stack is ever shared between
/// threads.
///
/// Two task shapes cut the sequential DFS tree into ordered pieces:
///   - `emit_only`: replay just the terminate-at-`node` half of the walk
///     (a state above the seed depth whose subtree is split further), and
///   - subtree: resume the full terminate-then-extend recursion at `node`.
/// Listing an emit-only task for a state before the subtree tasks of its
/// children reproduces the engine's pre-order exactly.
struct TrailTask {
  NodeId node{0};
  int64_t count = 0;
  bool emit_only = false;
  std::vector<RelId> hops;
  std::vector<NodeId> nodes;  // target of hops[i]; same length as `hops`
};

/// Per-fan-out state arena: the ordered task list, each worker's private
/// result buffer, and its completion status. Task order is the sequential
/// engine's DFS pre-order, so draining buffers in task-index order is
/// byte-identical to the sequential ascending-id emission order, no matter
/// which worker ran which task or in what order they finished.
class TrailArena {
 public:
  /// Appends a task (and its buffer/status slot); returns its index.
  size_t AddTask(TrailTask task);

  size_t size() const { return tasks_.size(); }
  const TrailTask& task(size_t i) const { return tasks_[i]; }

  /// Worker-side accessors: each task index owns its slots exclusively, so
  /// concurrent workers never touch the same element.
  std::vector<MatchAssignment>* buffer(size_t i) { return &buffers_[i]; }
  void set_status(size_t i, Status st) { statuses_[i] = std::move(st); }

  /// Records an evaluation error hit while seeding, positioned after every
  /// task created so far (seeding stops there, exactly where the sequential
  /// engine would have raised it).
  void SetSeedError(Status st) { seed_error_ = std::move(st); }
  const Status& seed_error() const { return seed_error_; }

  /// Replays buffered assignments through `sink` in task-index order and
  /// reports the first failure in sequential position order. A sink that
  /// asks to stop (returns false) sets `*stopped` and suppresses later
  /// tasks' results AND errors — sequential execution would never have
  /// reached them.
  Status Drain(const MatchSink& sink, bool* stopped) const;

 private:
  std::vector<TrailTask> tasks_;
  std::vector<std::vector<MatchAssignment>> buffers_;
  std::vector<Status> statuses_;
  Status seed_error_;
};

/// One candidate edge discovered by a parallel BFS level task, in the exact
/// order the sequential level loop would have visited it. Merging per-task
/// edge lists in task order replays the sequential dist/parents updates.
struct BfsEdge {
  NodeId from{0};
  RelId rel{0};
  NodeId to{0};
};

}  // namespace cypher

#endif  // CYPHER_MATCH_TRAIL_ARENA_H_
