#ifndef CYPHER_MATCH_COMPILED_PATTERN_H_
#define CYPHER_MATCH_COMPILED_PATTERN_H_

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/pattern.h"
#include "common/interner.h"
#include "eval/env.h"
#include "value/value.h"

namespace cypher {

// Compile-then-execute lowering of MATCH/MERGE patterns, following the
// relational-algebra formalisation of openCypher (Marton, Szárnyas, Varró):
// all string->Symbol resolution, constant folding and access-path selection
// happen once per clause; record-at-a-time execution then touches only
// pre-resolved symbols and pre-evaluated values.

/// One `{key: expr}` property filter with its key resolved to a Symbol.
/// An expression with no variable / graph / aggregate dependency is folded
/// to a Value at compile time; a row-dependent expression instead gets a
/// memo slot so the engine evaluates it once per record, not per candidate.
struct CompiledFilter {
  Symbol key = kNoSymbol;      // kNoSymbol: key never interned (value null)
  const Expr* expr = nullptr;  // source expression, never null
  bool is_constant = false;    // `constant` holds the folded value
  Value constant;
  size_t memo_slot = 0;  // valid when !is_constant
};

/// How one occurrence of a pattern variable behaves, decided at compile
/// time (boundness is a column-level property of the driving table, and
/// earlier patterns/steps bind in a fixed execution order):
///   kNone       — anonymous; nothing to bind or check.
///   kBind       — first occurrence: binds the matched entity, no lookup.
///   kCheckLocal — bound by an earlier pattern/step of this MATCH: the
///                 candidate must equal the value on the assignment stack.
///   kCheckInput — bound by the driving record: the candidate must equal
///                 the record's value (fetched once per record).
enum class VarClass { kNone, kBind, kCheckLocal, kCheckInput };

/// A node pattern with labels resolved. `impossible` marks a label that was
/// never interned: no node can carry it, so the containing pattern
/// short-circuits to zero matches without enumerating candidates.
struct CompiledNode {
  const NodePattern* source = nullptr;
  std::vector<Symbol> labels;
  std::vector<CompiledFilter> filters;
  VarClass var_class = VarClass::kNone;
  size_t input_slot = 0;  // valid when var_class == kCheckInput
  bool impossible = false;
};

/// A relationship pattern with types resolved. Unknown type alternatives
/// are dropped; `impossible` is set when alternatives were written but none
/// resolved. `direction` is the *execution* direction — flipped from the
/// syntax when the pattern runs reversed.
struct CompiledRel {
  const RelPattern* source = nullptr;
  std::vector<Symbol> types;
  std::vector<CompiledFilter> filters;
  RelDirection direction = RelDirection::kUndirected;
  VarClass var_class = VarClass::kNone;
  size_t input_slot = 0;  // valid when var_class == kCheckInput
  bool impossible = false;
};

/// How the engine seeds the first node of a pattern, cheapest first.
/// kTransientIndex is a one-shot hash built at compile time when a clause
/// will probe an unindexed property with equality once per driving record:
/// one O(domain) build replaces a per-record O(domain) scan.
enum class AnchorKind { kBound, kIndex, kTransientIndex, kLabelScan, kAllScan };

struct AnchorPlan {
  AnchorKind kind = AnchorKind::kAllScan;
  Symbol label = kNoSymbol;  // kIndex / kTransientIndex / kLabelScan
                             //   (kNoSymbol: all-node domain)
  Symbol key = kNoSymbol;    // kIndex / kTransientIndex
  size_t index_filter = 0;   // kIndex / kTransientIndex: position in the
                             //   anchor node's filters
  size_t cost = 0;           // estimated candidates to try
};

/// The one-shot hash behind a kTransientIndex anchor: HashValue buckets of
/// the anchor domain's nodes by their `key` property, ascending ids within
/// each bucket (the scan order the bucket replaces — hash collisions and
/// group-equal-but-distinct values are re-checked by the engine's filters,
/// so a bucket only needs to be a superset). Nodes without the property are
/// omitted: a stored null never equals any probe value. Shared, immutable
/// after build; parallel workers probe it concurrently.
struct TransientIndex {
  Symbol key = kNoSymbol;
  std::unordered_map<uint64_t, std::vector<NodeId>> buckets;
};

/// One executable path pattern. When the far end of the chain is a strictly
/// cheaper anchor than the syntactic start, the chain is stored reversed
/// (`reversed`), each relationship direction flipped; the engine re-reverses
/// emitted paths so `p = ...` still observes syntactic order. Patterns with
/// variable-length steps or path functions never reverse.
struct CompiledPath {
  const PathPattern* source = nullptr;
  bool impossible = false;
  bool reversed = false;
  /// The path variable collides with an existing binding (raised as a
  /// semantic error when a match reaches the pattern's end, as the
  /// interpreted engine did).
  bool path_var_conflict = false;
  CompiledNode start;  // the anchor end
  std::vector<std::pair<CompiledRel, CompiledNode>> steps;
  AnchorPlan anchor;
  /// Built when anchor.kind == kTransientIndex (null on EXPLAIN-only
  /// compiles, where the engine falls back to the scan it replaced).
  std::shared_ptr<const TransientIndex> transient;
};

/// A compiled conjunction of path patterns, ready for record-at-a-time
/// execution. Compile once per clause and reuse across records; executors
/// whose graph mutates between records (legacy MERGE reads its own writes,
/// so a label unknown at clause start can exist by record three) must
/// recompile per record instead.
struct CompiledMatch {
  std::vector<CompiledPath> paths;
  size_t memo_slots = 0;   // row-dependent filter cache slots to allocate
  size_t input_slots = 0;  // kCheckInput value cache slots to allocate
  bool impossible = false; // some pattern can never match
  /// Parallel-expansion classification for the executor's expand mode:
  /// `expand_safe` marks a conjunction with at least one var-length or
  /// shortest-path leg whose frontier may be fanned out across workers
  /// (the leg binds its own variables — a leg checked against an existing
  /// binding raises a semantic error before any walk). `expand_cost` is a
  /// saturating estimate of per-start expansion work — average-degree ^
  /// capped-hops for walks, nodes + rels for a BFS — and 1 when no such
  /// leg exists; the planner compares it against parallel_min_cost.
  bool expand_safe = false;
  size_t expand_cost = 1;
};

/// Compile-time knobs that depend on how the compiled match will be driven.
struct CompileMatchHints {
  /// Driving-table records the compiled match will execute over. At least
  /// kTransientIndexMinRows enables transient hash anchors (the build cost
  /// must amortize over repeated probes); the default of 1 keeps one-record
  /// compiles — pattern predicates, legacy MERGE — on the plain planner.
  size_t num_rows = 1;
};

/// A transient hash anchor needs this many driving records (each probing
/// once) and at least this large a scan domain to beat rescanning.
inline constexpr size_t kTransientIndexMinRows = 4;
inline constexpr size_t kTransientIndexMinDomain = 64;

/// Lowers `patterns` for execution against `ctx.graph`. `bindings` supplies
/// which variables are already bound (anchor selection — boundness is a
/// column-level property, identical across records of one table) and the
/// environment for constant folding. Folding is best-effort: a constant
/// expression whose evaluation fails is left unfolded so its error still
/// surfaces exactly when a candidate reaches the filter. Never fails.
CompiledMatch CompileMatch(const EvalContext& ctx, const Bindings& bindings,
                           const std::vector<PathPattern>& patterns,
                           const CompileMatchHints& hints = {});

/// EXPLAIN-time variant: no driving table exists, so `bound` lists the
/// variable names earlier clauses would have bound. Constant folding sees
/// parameters only.
CompiledMatch CompileMatchForExplain(
    const EvalContext& ctx, const std::unordered_set<std::string>& bound,
    const std::vector<PathPattern>& patterns);

/// Human-readable access-path summary for EXPLAIN, one fragment per
/// pattern: "index: :User(id)", "scan: label :User (~12 nodes)",
/// "scan: all nodes (~40)", "bound: 'u'", prefixed with "reversed, " when
/// the chain runs from its far end, or "never matches: ..." for impossible
/// patterns.
std::string DescribeMatchPlan(const PropertyGraph& graph,
                              const CompiledMatch& compiled);

}  // namespace cypher

#endif  // CYPHER_MATCH_COMPILED_PATTERN_H_
