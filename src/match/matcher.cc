#include "match/matcher.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/check.h"
#include "eval/evaluator.h"
#include "value/compare.h"

namespace cypher {

namespace {

/// A candidate traversal step: an alive relationship leaving `from` toward
/// `to` (direction already resolved).
struct RelCandidate {
  RelId rel;
  NodeId to;
};

class MatchEngine {
 public:
  MatchEngine(const EvalContext& ctx, const Bindings& bindings,
              const std::vector<PathPattern>& patterns,
              const MatchOptions& options, const MatchSink& sink)
      : ctx_(ctx),
        input_(bindings),
        patterns_(patterns),
        options_(options),
        sink_(sink),
        graph_(*ctx.graph) {}

  Status Run() {
    for (const PathPattern& pattern : patterns_) {
      CYPHER_RETURN_NOT_OK(ValidatePattern(pattern));
    }
    return MatchPattern(0);
  }

 private:
  Status ValidatePattern(const PathPattern& pattern) const {
    for (const auto& [rel, node] : pattern.steps) {
      if (rel.var_length && options_.mode == MatchMode::kHomomorphism &&
          rel.max_hops < 0) {
        return Status::SemanticError(
            "unbounded variable-length patterns are not finite under "
            "homomorphism matching; specify an upper bound");
      }
      if (rel.var_length && rel.min_hops < 0) {
        return Status::SemanticError("variable-length lower bound is negative");
      }
      if (rel.var_length && rel.max_hops >= 0 &&
          rel.max_hops < rel.min_hops) {
        return Status::SemanticError(
            "variable-length upper bound below lower bound");
      }
    }
    return Status::OK();
  }

  // ---- Variable environment -------------------------------------------------

  const Value* LookupAssigned(std::string_view name) const {
    return assigned_.Find(name);
  }

  std::optional<Value> LookupVar(std::string_view name) const {
    if (const Value* v = LookupAssigned(name)) return *v;
    return input_.Lookup(name);
  }

  // ---- Filters --------------------------------------------------------------

  /// Evaluates pattern property filters against the input record only
  /// (pattern-internal variables are not visible, as in Cypher).
  Result<bool> PropsFilterPass(
      const std::vector<std::pair<std::string, ExprPtr>>& filters,
      const PropertyMap& stored) {
    for (const auto& [key, expr] : filters) {
      CYPHER_ASSIGN_OR_RETURN(Value want, Evaluate(ctx_, input_, *expr));
      Symbol sym = graph_.FindKey(key);
      const Value& have =
          sym == kNoSymbol ? Value() : stored.Get(sym);
      if (CypherEquals(have, want) != Tri::kTrue) return false;
    }
    return true;
  }

  Result<bool> NodeMatches(const NodePattern& pattern, NodeId id) {
    if (!graph_.IsNodeAlive(id)) return false;
    for (const std::string& label : pattern.labels) {
      Symbol sym = graph_.FindLabel(label);
      if (sym == kNoSymbol || !graph_.NodeHasLabel(id, sym)) return false;
    }
    return PropsFilterPass(pattern.properties, graph_.node(id).props);
  }

  Result<bool> RelMatches(const RelPattern& pattern, RelId id) {
    const RelData& rel = graph_.rel(id);
    if (!pattern.types.empty()) {
      bool any = false;
      for (const std::string& type : pattern.types) {
        Symbol sym = graph_.FindType(type);
        if (sym != kNoSymbol && rel.type == sym) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return PropsFilterPass(pattern.properties, rel.props);
  }

  // ---- Candidate enumeration ------------------------------------------------

  /// All alive traversal candidates from `from` under the pattern's
  /// direction, ascending by relationship id (determinism).
  std::vector<RelCandidate> RelCandidates(NodeId from,
                                          const RelPattern& pattern) {
    std::vector<RelCandidate> out;
    bool want_out = pattern.direction != RelDirection::kRightToLeft;
    bool want_in = pattern.direction != RelDirection::kLeftToRight;
    if (want_out) {
      for (RelId r : graph_.OutRels(from)) {
        out.push_back({r, graph_.rel(r).tgt});
      }
    }
    if (want_in) {
      for (RelId r : graph_.InRels(from)) {
        // A self-loop already appeared in the out-scan of an undirected
        // pattern; do not produce it twice.
        if (want_out && graph_.rel(r).src == graph_.rel(r).tgt) continue;
        out.push_back({r, graph_.rel(r).src});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const RelCandidate& a, const RelCandidate& b) {
                return a.rel < b.rel;
              });
    return out;
  }

  bool RelUsable(RelId id) const {
    return options_.mode == MatchMode::kHomomorphism ||
           used_rels_.find(id.value) == used_rels_.end();
  }

  // ---- Search ---------------------------------------------------------------

  Status MatchPattern(size_t pattern_idx) {
    if (stopped_) return Status::OK();
    if (pattern_idx == patterns_.size()) {
      CYPHER_ASSIGN_OR_RETURN(bool more, sink_(assigned_));
      if (!more) stopped_ = true;
      return Status::OK();
    }
    const PathPattern& pattern = patterns_[pattern_idx];
    if (pattern.function != PathFunction::kNone) {
      return MatchShortestPattern(pattern, pattern_idx);
    }
    // Resolve start-node candidates.
    const NodePattern& start = pattern.start;
    auto try_start = [&](NodeId id) -> Status {
      CYPHER_ASSIGN_OR_RETURN(bool ok, NodeMatches(start, id));
      if (!ok) return Status::OK();
      size_t mark = assigned_.size();
      if (!start.variable.empty() && !LookupVar(start.variable)) {
        assigned_.Push(start.variable, Value::Node(id));
      }
      PathValue path;
      path.nodes.push_back(id);
      Status st = MatchStep(pattern, 0, id, &path, pattern_idx);
      assigned_.PopTo(mark);
      return st;
    };
    if (!start.variable.empty()) {
      if (std::optional<Value> bound = LookupVar(start.variable)) {
        if (bound->is_null()) return Status::OK();  // null never matches
        if (!bound->is_node()) {
          return Status::ExecutionError("variable '" + start.variable +
                                        "' is bound to " +
                                        ValueTypeName(bound->type()) +
                                        ", expected a node");
        }
        return try_start(bound->AsNode());
      }
    }
    // Unbound: prefer a property index, then the label index, then a full
    // scan. NodeMatches re-checks every filter, so index candidates only
    // need to be a superset of the true matches.
    std::vector<NodeId> candidates;
    bool resolved = false;
    for (const std::string& label : start.labels) {
      Symbol lsym = graph_.FindLabel(label);
      if (lsym == kNoSymbol) return Status::OK();  // label never created
      for (const auto& [key, expr] : start.properties) {
        Symbol ksym = graph_.FindKey(key);
        if (ksym == kNoSymbol || !graph_.HasIndex(lsym, ksym)) continue;
        CYPHER_ASSIGN_OR_RETURN(Value want, Evaluate(ctx_, input_, *expr));
        if (want.is_null()) return Status::OK();  // null filter: no match
        candidates = graph_.IndexLookup(lsym, ksym, want);
        resolved = true;
        break;
      }
      if (resolved) break;
    }
    if (!resolved) {
      if (!start.labels.empty()) {
        Symbol sym = graph_.FindLabel(start.labels.front());
        if (sym == kNoSymbol) return Status::OK();
        candidates = graph_.NodesByLabel(sym);
      } else {
        candidates = graph_.AllNodes();
      }
    }
    for (NodeId id : candidates) {
      if (stopped_) break;
      CYPHER_RETURN_NOT_OK(try_start(id));
    }
    return Status::OK();
  }

  // ---- shortestPath / allShortestPaths -------------------------------------

  /// BFS state for one shortest-path search: distance and the shortest-
  /// predecessor links of every reached node.
  struct BfsState {
    std::unordered_map<uint32_t, int64_t> dist;
    std::unordered_map<uint32_t, std::vector<std::pair<NodeId, RelId>>>
        parents;
  };

  Result<BfsState> RunBfs(NodeId source, const RelPattern& rel_pattern) {
    BfsState state;
    state.dist[source.value] = 0;
    std::vector<NodeId> frontier{source};
    int64_t level = 0;
    while (!frontier.empty() &&
           (rel_pattern.max_hops < 0 || level < rel_pattern.max_hops)) {
      std::vector<NodeId> next;
      for (NodeId n : frontier) {
        for (const RelCandidate& cand : RelCandidates(n, rel_pattern)) {
          if (!RelUsable(cand.rel)) continue;  // trail constraint
          CYPHER_ASSIGN_OR_RETURN(bool ok, RelMatches(rel_pattern, cand.rel));
          if (!ok) continue;
          auto [it, inserted] = state.dist.try_emplace(cand.to.value, level + 1);
          if (inserted) {
            state.parents[cand.to.value].emplace_back(n, cand.rel);
            next.push_back(cand.to);
          } else if (it->second == level + 1) {
            // Another shortest predecessor (for allShortestPaths).
            state.parents[cand.to.value].emplace_back(n, cand.rel);
          }
        }
      }
      frontier = std::move(next);
      ++level;
    }
    return state;
  }

  /// Enumerates shortest paths from the BFS source to `target`
  /// (all of them for kAllShortest, the rel-id-minimal one for kShortest)
  /// and emits each through `emit(path)`.
  Status ReconstructPaths(const BfsState& state, NodeId source, NodeId target,
                          bool all_shortest,
                          const std::function<Status(const PathValue&)>& emit) {
    // Build paths backwards from target.
    std::vector<std::pair<NodeId, RelId>> suffix;  // reversed (node, rel-in)
    std::function<Status(NodeId)> walk = [&](NodeId cur) -> Status {
      if (cur == source) {
        PathValue path;
        path.nodes.push_back(source);
        for (auto it = suffix.rbegin(); it != suffix.rend(); ++it) {
          path.rels.push_back(it->second);
          path.nodes.push_back(it->first);
        }
        return emit(path);
      }
      auto pit = state.parents.find(cur.value);
      CYPHER_CHECK(pit != state.parents.end());
      std::vector<std::pair<NodeId, RelId>> links = pit->second;
      std::sort(links.begin(), links.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      size_t limit = all_shortest ? links.size() : 1;
      for (size_t i = 0; i < limit; ++i) {
        if (stopped_) break;
        suffix.emplace_back(cur, links[i].second);
        CYPHER_RETURN_NOT_OK(walk(links[i].first));
        suffix.pop_back();
      }
      return Status::OK();
    };
    return walk(target);
  }

  Status MatchShortestPattern(const PathPattern& pattern, size_t pattern_idx) {
    const auto& [rel_pattern, end_pattern] = pattern.steps.front();
    bool all_shortest = pattern.function == PathFunction::kAllShortest;
    // Resolve start candidates exactly like a plain pattern start.
    std::vector<NodeId> starts;
    const NodePattern& start = pattern.start;
    if (!start.variable.empty()) {
      if (std::optional<Value> bound = LookupVar(start.variable)) {
        if (bound->is_null()) return Status::OK();
        if (!bound->is_node()) {
          return Status::ExecutionError("variable '" + start.variable +
                                        "' is bound to " +
                                        ValueTypeName(bound->type()) +
                                        ", expected a node");
        }
        starts.push_back(bound->AsNode());
      }
    }
    if (starts.empty()) {
      if (!start.labels.empty()) {
        Symbol sym = graph_.FindLabel(start.labels.front());
        if (sym == kNoSymbol) return Status::OK();
        starts = graph_.NodesByLabel(sym);
      } else {
        starts = graph_.AllNodes();
      }
    }
    // Resolve a bound end variable once (restricts BFS targets).
    std::optional<NodeId> bound_end;
    if (!end_pattern.variable.empty()) {
      if (std::optional<Value> bound = LookupVar(end_pattern.variable)) {
        if (bound->is_null()) return Status::OK();
        if (!bound->is_node()) {
          return Status::ExecutionError("variable '" + end_pattern.variable +
                                        "' is bound to " +
                                        ValueTypeName(bound->type()) +
                                        ", expected a node");
        }
        bound_end = bound->AsNode();
      }
    }
    for (NodeId s : starts) {
      if (stopped_) break;
      CYPHER_ASSIGN_OR_RETURN(bool start_ok, NodeMatches(start, s));
      if (!start_ok) continue;
      CYPHER_ASSIGN_OR_RETURN(BfsState state, RunBfs(s, rel_pattern));
      // Deterministic target order: ascending node id.
      std::vector<NodeId> targets;
      if (bound_end.has_value()) {
        if (state.dist.count(bound_end->value)) targets.push_back(*bound_end);
      } else {
        for (const auto& [id, d] : state.dist) targets.push_back(NodeId(id));
        std::sort(targets.begin(), targets.end());
      }
      for (NodeId t : targets) {
        if (stopped_) break;
        int64_t d = state.dist.at(t.value);
        if (d < rel_pattern.min_hops) continue;
        if (rel_pattern.max_hops >= 0 && d > rel_pattern.max_hops) continue;
        CYPHER_ASSIGN_OR_RETURN(bool end_ok, NodeMatches(end_pattern, t));
        if (!end_ok) continue;
        Status st = ReconstructPaths(
            state, s, t, all_shortest, [&](const PathValue& path) -> Status {
              size_t mark = assigned_.size();
              if (!start.variable.empty() && !LookupVar(start.variable)) {
                assigned_.Push(start.variable, Value::Node(s));
              }
              if (!end_pattern.variable.empty() &&
                  !LookupVar(end_pattern.variable)) {
                assigned_.Push(end_pattern.variable, Value::Node(t));
              }
              if (!rel_pattern.variable.empty()) {
                if (LookupVar(rel_pattern.variable)) {
                  return Status::SemanticError(
                      "variable-length relationship variable '" +
                      rel_pattern.variable + "' is already bound");
                }
                ValueList rels;
                for (RelId r : path.rels) rels.push_back(Value::Rel(r));
                assigned_.Push(rel_pattern.variable,
                               Value::List(std::move(rels)));
              }
              if (!pattern.path_variable.empty()) {
                assigned_.Push(pattern.path_variable, Value::Path(path));
              }
              for (RelId r : path.rels) used_rels_.insert(r.value);
              Status inner = MatchPattern(pattern_idx + 1);
              for (RelId r : path.rels) used_rels_.erase(r.value);
              assigned_.PopTo(mark);
              return inner;
            });
        CYPHER_RETURN_NOT_OK(st);
      }
    }
    return Status::OK();
  }

  Status MatchStep(const PathPattern& pattern, size_t step_idx, NodeId cur,
                   PathValue* path, size_t pattern_idx) {
    if (stopped_) return Status::OK();
    if (step_idx == pattern.steps.size()) {
      size_t mark = assigned_.size();
      if (!pattern.path_variable.empty()) {
        if (LookupVar(pattern.path_variable)) {
          return Status::SemanticError("path variable '" +
                                       pattern.path_variable +
                                       "' is already bound");
        }
        assigned_.Push(pattern.path_variable, Value::Path(*path));
      }
      Status st = MatchPattern(pattern_idx + 1);
      assigned_.PopTo(mark);
      return st;
    }
    const auto& [rel_pattern, node_pattern] = pattern.steps[step_idx];
    if (rel_pattern.var_length) {
      return MatchVarLength(pattern, step_idx, cur, path, pattern_idx);
    }
    // Bound relationship variable: a single candidate.
    if (!rel_pattern.variable.empty()) {
      if (std::optional<Value> bound = LookupVar(rel_pattern.variable)) {
        if (bound->is_null()) return Status::OK();
        if (!bound->is_rel()) {
          return Status::ExecutionError("variable '" + rel_pattern.variable +
                                        "' is bound to " +
                                        ValueTypeName(bound->type()) +
                                        ", expected a relationship");
        }
        RelId id = bound->AsRel();
        if (!graph_.IsRelAlive(id) || !RelUsable(id)) return Status::OK();
        const RelData& rel = graph_.rel(id);
        NodeId next;
        bool connects = false;
        if (rel_pattern.direction != RelDirection::kRightToLeft &&
            rel.src == cur) {
          next = rel.tgt;
          connects = true;
        } else if (rel_pattern.direction != RelDirection::kLeftToRight &&
                   rel.tgt == cur) {
          next = rel.src;
          connects = true;
        }
        if (!connects) return Status::OK();
        CYPHER_ASSIGN_OR_RETURN(bool rel_ok, RelMatches(rel_pattern, id));
        if (!rel_ok) return Status::OK();
        return EnterNode(pattern, step_idx, id, next, path, pattern_idx);
      }
    }
    for (const RelCandidate& cand : RelCandidates(cur, rel_pattern)) {
      if (stopped_) break;
      if (!RelUsable(cand.rel)) continue;
      CYPHER_ASSIGN_OR_RETURN(bool rel_ok, RelMatches(rel_pattern, cand.rel));
      if (!rel_ok) continue;
      size_t mark = assigned_.size();
      if (!rel_pattern.variable.empty()) {
        assigned_.Push(rel_pattern.variable, Value::Rel(cand.rel));
      }
      CYPHER_RETURN_NOT_OK(
          EnterNode(pattern, step_idx, cand.rel, cand.to, path, pattern_idx));
      assigned_.PopTo(mark);
    }
    return Status::OK();
  }

  /// Checks the target node pattern of a step against `next`, binds its
  /// variable, marks the relationship used, and recurses to the next step.
  Status EnterNode(const PathPattern& pattern, size_t step_idx, RelId via,
                   NodeId next, PathValue* path, size_t pattern_idx) {
    const NodePattern& node_pattern = pattern.steps[step_idx].second;
    if (!node_pattern.variable.empty()) {
      if (std::optional<Value> bound = LookupVar(node_pattern.variable)) {
        if (bound->is_null()) return Status::OK();
        if (!bound->is_node()) {
          return Status::ExecutionError("variable '" + node_pattern.variable +
                                        "' is bound to " +
                                        ValueTypeName(bound->type()) +
                                        ", expected a node");
        }
        if (bound->AsNode() != next) return Status::OK();
      }
    }
    CYPHER_ASSIGN_OR_RETURN(bool node_ok, NodeMatches(node_pattern, next));
    if (!node_ok) return Status::OK();
    size_t mark = assigned_.size();
    if (!node_pattern.variable.empty() && !LookupVar(node_pattern.variable)) {
      assigned_.Push(node_pattern.variable, Value::Node(next));
    }
    used_rels_.insert(via.value);
    path->rels.push_back(via);
    path->nodes.push_back(next);
    Status st = MatchStep(pattern, step_idx + 1, next, path, pattern_idx);
    path->nodes.pop_back();
    path->rels.pop_back();
    used_rels_.erase(via.value);
    assigned_.PopTo(mark);
    return st;
  }

  Status MatchVarLength(const PathPattern& pattern, size_t step_idx,
                        NodeId cur, PathValue* path, size_t pattern_idx) {
    const auto& [rel_pattern, node_pattern] = pattern.steps[step_idx];
    if (!rel_pattern.variable.empty() && LookupVar(rel_pattern.variable)) {
      return Status::SemanticError(
          "variable-length relationship variable '" + rel_pattern.variable +
          "' is already bound");
    }
    std::vector<RelId> hops;
    return VarLengthFrom(pattern, step_idx, cur, 0, &hops, path, pattern_idx);
  }

  Status VarLengthFrom(const PathPattern& pattern, size_t step_idx,
                       NodeId cur, int64_t count, std::vector<RelId>* hops,
                       PathValue* path, size_t pattern_idx) {
    if (stopped_) return Status::OK();
    const auto& [rel_pattern, node_pattern] = pattern.steps[step_idx];
    if (count >= rel_pattern.min_hops) {
      // Try to terminate the variable-length section at `cur`.
      if (!node_pattern.variable.empty()) {
        std::optional<Value> bound = LookupVar(node_pattern.variable);
        if (bound && (!bound->is_node() || bound->AsNode() != cur)) {
          goto extend;  // cannot terminate here; keep walking
        }
      }
      {
        CYPHER_ASSIGN_OR_RETURN(bool node_ok, NodeMatches(node_pattern, cur));
        if (node_ok) {
          size_t mark = assigned_.size();
          if (!rel_pattern.variable.empty()) {
            ValueList rel_values;
            rel_values.reserve(hops->size());
            for (RelId r : *hops) rel_values.push_back(Value::Rel(r));
            assigned_.Push(rel_pattern.variable,
                           Value::List(std::move(rel_values)));
          }
          if (!node_pattern.variable.empty() &&
              !LookupVar(node_pattern.variable)) {
            assigned_.Push(node_pattern.variable, Value::Node(cur));
          }
          CYPHER_RETURN_NOT_OK(
              MatchStep(pattern, step_idx + 1, cur, path, pattern_idx));
          assigned_.PopTo(mark);
        }
      }
    }
  extend:
    if (rel_pattern.max_hops >= 0 && count >= rel_pattern.max_hops) {
      return Status::OK();
    }
    for (const RelCandidate& cand : RelCandidates(cur, rel_pattern)) {
      if (stopped_) break;
      // Within a variable-length walk the trail constraint always applies
      // (it is what bounds unbounded walks); homomorphism mode still skips
      // cross-pattern uniqueness but cannot revisit within the walk.
      if (std::find(hops->begin(), hops->end(), cand.rel) != hops->end()) {
        continue;
      }
      if (!RelUsable(cand.rel)) continue;
      CYPHER_ASSIGN_OR_RETURN(bool rel_ok, RelMatches(rel_pattern, cand.rel));
      if (!rel_ok) continue;
      used_rels_.insert(cand.rel.value);
      hops->push_back(cand.rel);
      path->rels.push_back(cand.rel);
      path->nodes.push_back(cand.to);
      CYPHER_RETURN_NOT_OK(VarLengthFrom(pattern, step_idx, cand.to, count + 1,
                                         hops, path, pattern_idx));
      path->nodes.pop_back();
      path->rels.pop_back();
      hops->pop_back();
      used_rels_.erase(cand.rel.value);
    }
    return Status::OK();
  }

  const EvalContext& ctx_;
  const Bindings& input_;
  const std::vector<PathPattern>& patterns_;
  const MatchOptions& options_;
  const MatchSink& sink_;
  const PropertyGraph& graph_;
  MatchAssignment assigned_;
  std::unordered_set<uint32_t> used_rels_;
  bool stopped_ = false;
};

}  // namespace

Status MatchPatterns(const EvalContext& ctx, const Bindings& bindings,
                     const std::vector<PathPattern>& patterns,
                     const MatchOptions& options, const MatchSink& sink) {
  return MatchEngine(ctx, bindings, patterns, options, sink).Run();
}

Result<bool> HasMatch(const EvalContext& ctx, const Bindings& bindings,
                      const std::vector<PathPattern>& patterns,
                      const MatchOptions& options) {
  bool found = false;
  Status st = MatchPatterns(ctx, bindings, patterns, options,
                            [&found](const MatchAssignment&) -> Result<bool> {
                              found = true;
                              return false;  // stop at first match
                            });
  CYPHER_RETURN_NOT_OK(st);
  return found;
}

}  // namespace cypher
