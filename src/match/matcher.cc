#include "match/matcher.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/check.h"
#include "common/thread_pool.h"
#include "eval/evaluator.h"
#include "match/compiled_pattern.h"
#include "match/trail_arena.h"
#include "value/compare.h"

namespace cypher {

namespace {

const Value kNullValue;

/// Parallel-expansion tuning: seed the var-length DFS deeper until at least
/// `workers * kExpandTasksPerWorker` tasks exist (small tasks absorb skew
/// from work stealing), give up past kMaxSeedDepth, and only fan a BFS
/// level out when its frontier holds at least kMinBfsFrontier nodes.
constexpr int64_t kMaxSeedDepth = 4;
constexpr size_t kExpandTasksPerWorker = 4;
constexpr size_t kMinBfsFrontier = 4;

/// A candidate traversal step: an alive relationship leaving `from` toward
/// `to` (direction already resolved).
struct RelCandidate {
  RelId rel;
  NodeId to;
};

/// Zero-copy enumeration of traversal candidates from one node: merge-walks
/// the (sorted) out/in adjacency lists directly, yielding candidates in
/// ascending relationship-id order (the determinism contract) without
/// materializing a vector.
class RelCandidateCursor {
 public:
  RelCandidateCursor(const PropertyGraph& graph, NodeId from, RelDirection dir)
      : graph_(graph),
        out_(graph.RawOutRels(from)),
        in_(graph.RawInRels(from)),
        want_out_(dir != RelDirection::kRightToLeft),
        want_in_(dir != RelDirection::kLeftToRight) {}

  bool Next(RelCandidate* cand) {
    while (true) {
      if (want_out_) {
        while (oi_ < out_.size() && !graph_.IsRelAlive(out_[oi_])) ++oi_;
      }
      if (want_in_) {
        while (ii_ < in_.size() && !graph_.IsRelAlive(in_[ii_])) ++ii_;
      }
      bool have_out = want_out_ && oi_ < out_.size();
      bool have_in = want_in_ && ii_ < in_.size();
      if (!have_out && !have_in) return false;
      // On equal ids (a self-loop listed on both sides) the out side wins.
      if (have_out && (!have_in || !(in_[ii_] < out_[oi_]))) {
        RelId r = out_[oi_++];
        *cand = {r, graph_.rel(r).tgt};
        return true;
      }
      RelId r = in_[ii_++];
      const RelData& data = graph_.rel(r);
      // A self-loop already surfaced via the out side of an undirected
      // pattern; do not produce it twice.
      if (want_out_ && data.src == data.tgt) continue;
      *cand = {r, data.src};
      return true;
    }
  }

 private:
  const PropertyGraph& graph_;
  const std::vector<RelId>& out_;
  const std::vector<RelId>& in_;
  size_t oi_ = 0;
  size_t ii_ = 0;
  bool want_out_;
  bool want_in_;
};

/// Record-at-a-time executor of a CompiledMatch. The candidate loops touch
/// no strings: labels/types/keys are pre-resolved Symbols, filter values
/// are pre-folded constants or per-record memos, and every variable
/// occurrence carries its compile-time VarClass (bind fresh, check against
/// the local assignment stack, or check against a prefetched record value).
class MatchEngine {
 public:
  MatchEngine(const EvalContext& ctx, const Bindings& bindings,
              const CompiledMatch& compiled, const MatchOptions& options,
              const MatchSink& sink, const AnchorMorsel* morsel = nullptr)
      : ctx_(ctx),
        input_(bindings),
        compiled_(compiled),
        options_(options),
        sink_(sink),
        graph_(*ctx.graph),
        morsel_(morsel),
        memo_(compiled.memo_slots),
        input_cache_(compiled.input_slots),
        cancel_gate_(ctx.cancel) {}

  Status Run() {
    for (const CompiledPath& path : compiled_.paths) {
      CYPHER_RETURN_NOT_OK(ValidatePattern(*path.source));
    }
    // A pattern naming a never-interned label/type cannot match: zero rows,
    // zero per-candidate work (semantic validation above still applies).
    if (compiled_.impossible) return Status::OK();
    PrefetchInputs();
    return MatchPattern(0);
  }

 private:
  Status ValidatePattern(const PathPattern& pattern) const {
    for (const auto& [rel, node] : pattern.steps) {
      if (rel.var_length && options_.mode == MatchMode::kHomomorphism &&
          rel.max_hops < 0) {
        return Status::SemanticError(
            "unbounded variable-length patterns are not finite under "
            "homomorphism matching; specify an upper bound");
      }
      if (rel.var_length && rel.min_hops < 0) {
        return Status::SemanticError("variable-length lower bound is negative");
      }
      if (rel.var_length && rel.max_hops >= 0 &&
          rel.max_hops < rel.min_hops) {
        return Status::SemanticError(
            "variable-length upper bound below lower bound");
      }
    }
    return Status::OK();
  }

  // ---- Variable environment -------------------------------------------------

  /// Record values never change while one engine runs (the engine lives for
  /// exactly one record), so every kCheckInput variable is fetched from the
  /// driving record once, up front, instead of per candidate.
  template <typename Compiled>
  void PrefetchInput(const Compiled& c) {
    if (c.var_class != VarClass::kCheckInput) return;
    std::optional<Value>& slot = input_cache_[c.input_slot];
    if (!slot.has_value()) slot = input_.Lookup(c.source->variable);
  }

  void PrefetchInputs() {
    for (const CompiledPath& path : compiled_.paths) {
      PrefetchInput(path.start);
      for (const auto& [rel, node] : path.steps) {
        PrefetchInput(rel);
        PrefetchInput(node);
      }
    }
  }

  /// The already-bound value this occurrence must match, or nullptr when it
  /// binds fresh. nullptr for a kCheck* occurrence means the runtime
  /// environment contradicts the compile-time one; the engine then treats
  /// the variable as unbound (the interpreted engine's behavior).
  template <typename Compiled>
  const Value* BoundValue(const Compiled& c) const {
    switch (c.var_class) {
      case VarClass::kCheckLocal:
        return assigned_.Find(c.source->variable);
      case VarClass::kCheckInput: {
        const std::optional<Value>& v = input_cache_[c.input_slot];
        return v.has_value() ? &*v : nullptr;
      }
      default:
        return nullptr;
    }
  }

  // ---- Filters --------------------------------------------------------------

  /// The wanted value of one filter: the compile-time constant, or the
  /// record-level memo (row-dependent expressions are evaluated at most
  /// once per record). `memo` overrides the engine's own memo table —
  /// parallel BFS workers pass a private copy so lazy fills never race.
  Result<const Value*> FilterValue(const CompiledFilter& filter,
                                   std::vector<std::optional<Value>>* memo =
                                       nullptr) {
    if (filter.is_constant) return &filter.constant;
    if (memo == nullptr) memo = &memo_;
    std::optional<Value>& slot = (*memo)[filter.memo_slot];
    if (!slot.has_value()) {
      CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ctx_, input_, *filter.expr));
      slot = std::move(v);
    }
    return &*slot;
  }

  /// Pattern property filters are evaluated against the input record only
  /// (pattern-internal variables are not visible, as in Cypher).
  Result<bool> PropsFilterPass(const std::vector<CompiledFilter>& filters,
                               const PropertyMap& stored,
                               std::vector<std::optional<Value>>* memo =
                                   nullptr) {
    for (const CompiledFilter& filter : filters) {
      CYPHER_ASSIGN_OR_RETURN(const Value* want, FilterValue(filter, memo));
      const Value& have =
          filter.key == kNoSymbol ? kNullValue : stored.Get(filter.key);
      if (CypherEquals(have, *want) != Tri::kTrue) return false;
    }
    return true;
  }

  Result<bool> NodeMatches(const CompiledNode& pattern, NodeId id) {
    if (!graph_.IsNodeAlive(id)) return false;
    for (Symbol label : pattern.labels) {
      if (!graph_.NodeHasLabel(id, label)) return false;
    }
    return PropsFilterPass(pattern.filters, graph_.node(id).props);
  }

  Result<bool> RelMatches(const CompiledRel& pattern, RelId id,
                          std::vector<std::optional<Value>>* memo = nullptr) {
    const RelData& rel = graph_.rel(id);
    if (!pattern.types.empty()) {
      bool any = false;
      for (Symbol type : pattern.types) {
        if (rel.type == type) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return PropsFilterPass(pattern.filters, rel.props, memo);
  }

  bool RelUsable(RelId id) const {
    if (options_.mode == MatchMode::kHomomorphism) return true;
    // Linear scan: the trail stack holds at most the current pattern depth,
    // small enough that hashing would cost more than the walk.
    for (RelId r : used_rels_) {
      if (r == id) return false;
    }
    return true;
  }

  // ---- Start-point enumeration ----------------------------------------------

  /// Enumerates start candidates, ascending by node id. A resolved bound
  /// value yields a single candidate; otherwise the compiled anchor plan
  /// picks the access path. Every plan yields a superset of the true
  /// matches (callers re-check NodeMatches), so the plan affects cost only.
  /// A morsel restriction (parallel execution) applies to the first path's
  /// scan anchor only — the driver only hands out morsels for scan kinds.
  template <typename Fn>
  Status ForEachStartCandidate(const CompiledPath& cpath, size_t pattern_idx,
                               const Value* bound, const Fn& fn) {
    if (bound != nullptr) {
      if (bound->is_null()) return Status::OK();  // null never matches
      if (!bound->is_node()) {
        return Status::ExecutionError(
            "variable '" + cpath.start.source->variable + "' is bound to " +
            ValueTypeName(bound->type()) + ", expected a node");
      }
      return fn(bound->AsNode());
    }
    const AnchorMorsel* morsel =
        (morsel_ != nullptr && pattern_idx == 0) ? morsel_ : nullptr;
    switch (cpath.anchor.kind) {
      case AnchorKind::kIndex: {
        const CompiledFilter& filter =
            cpath.start.filters[cpath.anchor.index_filter];
        CYPHER_ASSIGN_OR_RETURN(const Value* want, FilterValue(filter));
        if (want->is_null()) return Status::OK();  // null filter: no match
        for (NodeId id :
             graph_.IndexLookup(cpath.anchor.label, cpath.anchor.key, *want)) {
          if (stopped_) break;
          CYPHER_RETURN_NOT_OK(fn(id));
        }
        return Status::OK();
      }
      case AnchorKind::kTransientIndex: {
        const CompiledFilter& filter =
            cpath.start.filters[cpath.anchor.index_filter];
        CYPHER_ASSIGN_OR_RETURN(const Value* want, FilterValue(filter));
        if (want->is_null()) return Status::OK();  // null filter: no match
        if (cpath.transient == nullptr) {
          // EXPLAIN-only compile reached execution: fall back to the scan
          // the hash would have replaced.
          return ScanDomain(cpath.anchor.label, nullptr, fn);
        }
        auto it = cpath.transient->buckets.find(HashValue(*want));
        if (it == cpath.transient->buckets.end()) return Status::OK();
        // Bucket entries are ascending and a superset of the true matches
        // (hash collisions included); NodeMatches re-checks the filter.
        for (NodeId id : it->second) {
          if (stopped_) break;
          CYPHER_RETURN_NOT_OK(fn(id));
        }
        return Status::OK();
      }
      case AnchorKind::kLabelScan:
        return ScanDomain(cpath.anchor.label, morsel, fn);
      case AnchorKind::kBound:  // planned bound but unbound at runtime
      case AnchorKind::kAllScan:
        return ScanDomain(kNoSymbol, morsel, fn);
    }
    return Status::OK();
  }

  /// Label scan (label != kNoSymbol) or all-node scan, optionally restricted
  /// to a morsel of the scan domain.
  template <typename Fn>
  Status ScanDomain(Symbol label, const AnchorMorsel* morsel, const Fn& fn) {
    Status st;
    auto visit = [&](NodeId id) {
      if (stopped_) return false;
      st = cancel_gate_.Check();
      if (st.ok()) st = fn(id);
      return st.ok();
    };
    if (label != kNoSymbol) {
      if (morsel != nullptr) {
        graph_.ForEachNodeWithLabelInRange(label, morsel->begin, morsel->end,
                                           visit);
      } else {
        graph_.ForEachNodeWithLabel(label, visit);
      }
    } else {
      if (morsel != nullptr) {
        graph_.ForEachNodeInSlotRange(morsel->begin, morsel->end, visit);
      } else {
        graph_.ForEachNode(visit);
      }
    }
    return st;
  }

  // ---- Search ---------------------------------------------------------------

  Status MatchPattern(size_t pattern_idx) {
    if (stopped_) return Status::OK();
    if (pattern_idx == compiled_.paths.size()) {
      CYPHER_ASSIGN_OR_RETURN(bool more, sink_(assigned_));
      if (!more) stopped_ = true;
      return Status::OK();
    }
    const CompiledPath& cpath = compiled_.paths[pattern_idx];
    if (cpath.source->function != PathFunction::kNone) {
      return MatchShortestPattern(cpath, pattern_idx);
    }
    const CompiledNode& start = cpath.start;
    const std::string& var = start.source->variable;
    const Value* bound_start = BoundValue(start);
    // Bind when this is the variable's first occurrence, or when a checked
    // variable turned out unbound at runtime (environment mismatch).
    bool push_start = !var.empty() && bound_start == nullptr;
    PathValue path;  // reused across candidates to amortize allocation
    return ForEachStartCandidate(cpath, pattern_idx, bound_start,
                                 [&](NodeId id) -> Status {
      CYPHER_ASSIGN_OR_RETURN(bool ok, NodeMatches(start, id));
      if (!ok) return Status::OK();
      size_t mark = assigned_.size();
      if (push_start) assigned_.Push(var, Value::Node(id));
      path.nodes.assign(1, id);
      path.rels.clear();
      Status st = MatchStep(cpath, 0, id, &path, pattern_idx);
      assigned_.PopTo(mark);
      return st;
    });
  }

  // ---- shortestPath / allShortestPaths -------------------------------------

  /// BFS state for one shortest-path search: distance and the shortest-
  /// predecessor links of every reached node.
  struct BfsState {
    std::unordered_map<uint32_t, int64_t> dist;
    std::unordered_map<uint32_t, std::vector<std::pair<NodeId, RelId>>>
        parents;
  };

  Result<BfsState> RunBfs(NodeId source, const CompiledRel& rel_pattern) {
    const RelPattern& rel_src = *rel_pattern.source;
    BfsState state;
    state.dist[source.value] = 0;
    std::vector<NodeId> frontier{source};
    int64_t level = 0;
    while (!frontier.empty() &&
           (rel_src.max_hops < 0 || level < rel_src.max_hops)) {
      CYPHER_RETURN_NOT_OK(cancel_gate_.Check());
      std::vector<NodeId> next;
      if (options_.expand_workers > 1 && frontier.size() >= kMinBfsFrontier) {
        CYPHER_RETURN_NOT_OK(ExpandBfsLevelParallel(rel_pattern, frontier,
                                                    level, &state, &next));
      } else {
        for (NodeId n : frontier) {
          RelCandidateCursor cursor(graph_, n, rel_pattern.direction);
          RelCandidate cand;
          while (cursor.Next(&cand)) {
            if (!RelUsable(cand.rel)) continue;  // trail constraint
            CYPHER_ASSIGN_OR_RETURN(bool ok,
                                    RelMatches(rel_pattern, cand.rel));
            if (!ok) continue;
            MergeBfsEdge(n, cand.rel, cand.to, level, &state, &next);
          }
        }
      }
      frontier = std::move(next);
      ++level;
    }
    return state;
  }

  /// Applies one candidate edge to the BFS state exactly as the sequential
  /// level loop does: a first discovery sets the distance and enqueues the
  /// target, an equal-distance rediscovery appends another shortest
  /// predecessor (for allShortestPaths).
  void MergeBfsEdge(NodeId from, RelId rel, NodeId to, int64_t level,
                    BfsState* state, std::vector<NodeId>* next) {
    auto [it, inserted] = state->dist.try_emplace(to.value, level + 1);
    if (inserted) {
      state->parents[to.value].emplace_back(from, rel);
      next->push_back(to);
    } else if (it->second == level + 1) {
      state->parents[to.value].emplace_back(from, rel);
    }
  }

  /// Morsel-splits one BFS level: workers take contiguous frontier slices
  /// and record passing candidate edges — a pure read of the graph plus a
  /// private filter-memo copy, so no BFS state is shared. The merge then
  /// replays edges in slice order, i.e. the exact sequential visit order,
  /// so dist/parents/next come out identical to the one-worker loop.
  Status ExpandBfsLevelParallel(const CompiledRel& rel_pattern,
                                const std::vector<NodeId>& frontier,
                                int64_t level, BfsState* state,
                                std::vector<NodeId>* next) {
    size_t num_tasks = std::min(
        frontier.size(), options_.expand_workers * kExpandTasksPerWorker);
    size_t slice = (frontier.size() + num_tasks - 1) / num_tasks;
    num_tasks = (frontier.size() + slice - 1) / slice;
    std::vector<std::vector<BfsEdge>> edges(num_tasks);
    std::vector<Status> statuses(num_tasks);
    ThreadPool::Shared().Run(
        num_tasks, options_.expand_workers, [&](size_t t) {
          std::vector<std::optional<Value>> memo = memo_;
          CancelGate gate(ctx_.cancel);
          size_t begin = t * slice;
          size_t end = std::min(frontier.size(), begin + slice);
          for (size_t i = begin; i < end; ++i) {
            RelCandidateCursor cursor(graph_, frontier[i],
                                      rel_pattern.direction);
            RelCandidate cand;
            while (cursor.Next(&cand)) {
              if (Status cst = gate.Check(); !cst.ok()) {
                statuses[t] = std::move(cst);
                return;
              }
              if (!RelUsable(cand.rel)) continue;
              Result<bool> ok = RelMatches(rel_pattern, cand.rel, &memo);
              if (!ok.ok()) {
                statuses[t] = ok.status();
                return;
              }
              if (!*ok) continue;
              edges[t].push_back(BfsEdge{frontier[i], cand.rel, cand.to});
            }
          }
        });
    for (size_t t = 0; t < num_tasks; ++t) {
      // Lowest failing slice = the error sequential execution hits first.
      CYPHER_RETURN_NOT_OK(statuses[t]);
    }
    for (const std::vector<BfsEdge>& task_edges : edges) {
      for (const BfsEdge& e : task_edges) {
        MergeBfsEdge(e.from, e.rel, e.to, level, state, next);
      }
    }
    return Status::OK();
  }

  /// Enumerates shortest paths from the BFS source to `target`
  /// (all of them for kAllShortest, the rel-id-minimal one for kShortest)
  /// and emits each through `emit(path)`.
  Status ReconstructPaths(const BfsState& state, NodeId source, NodeId target,
                          bool all_shortest,
                          const std::function<Status(const PathValue&)>& emit) {
    // Build paths backwards from target.
    std::vector<std::pair<NodeId, RelId>> suffix;  // reversed (node, rel-in)
    std::function<Status(NodeId)> walk = [&](NodeId cur) -> Status {
      if (cur == source) {
        PathValue path;
        path.nodes.push_back(source);
        for (auto it = suffix.rbegin(); it != suffix.rend(); ++it) {
          path.rels.push_back(it->second);
          path.nodes.push_back(it->first);
        }
        return emit(path);
      }
      auto pit = state.parents.find(cur.value);
      CYPHER_CHECK(pit != state.parents.end());
      std::vector<std::pair<NodeId, RelId>> links = pit->second;
      std::sort(links.begin(), links.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      size_t limit = all_shortest ? links.size() : 1;
      for (size_t i = 0; i < limit; ++i) {
        if (stopped_) break;
        suffix.emplace_back(cur, links[i].second);
        CYPHER_RETURN_NOT_OK(walk(links[i].first));
        suffix.pop_back();
      }
      return Status::OK();
    };
    return walk(target);
  }

  Status MatchShortestPattern(const CompiledPath& cpath, size_t pattern_idx) {
    const PathPattern& pattern = *cpath.source;
    const CompiledRel& rel_pattern = cpath.steps.front().first;
    const CompiledNode& end_pattern = cpath.steps.front().second;
    const RelPattern& rel_src = *rel_pattern.source;
    const NodePattern& start_src = *cpath.start.source;
    const NodePattern& end_src = *end_pattern.source;
    bool all_shortest = pattern.function == PathFunction::kAllShortest;
    // Resolve a bound end variable once (restricts BFS targets).
    std::optional<NodeId> bound_end;
    if (const Value* bound = BoundValue(end_pattern)) {
      if (bound->is_null()) return Status::OK();
      if (!bound->is_node()) {
        return Status::ExecutionError("variable '" + end_src.variable +
                                      "' is bound to " +
                                      ValueTypeName(bound->type()) +
                                      ", expected a node");
      }
      bound_end = bound->AsNode();
    }
    const Value* bound_start = BoundValue(cpath.start);
    bool push_start = !start_src.variable.empty() && bound_start == nullptr;
    return ForEachStartCandidate(cpath, pattern_idx, bound_start,
                                 [&](NodeId s) -> Status {
      if (stopped_) return Status::OK();
      CYPHER_ASSIGN_OR_RETURN(bool start_ok, NodeMatches(cpath.start, s));
      if (!start_ok) return Status::OK();
      CYPHER_ASSIGN_OR_RETURN(BfsState state, RunBfs(s, rel_pattern));
      // Deterministic target order: ascending node id.
      std::vector<NodeId> targets;
      if (bound_end.has_value()) {
        if (state.dist.count(bound_end->value)) targets.push_back(*bound_end);
      } else {
        for (const auto& [id, d] : state.dist) targets.push_back(NodeId(id));
        std::sort(targets.begin(), targets.end());
      }
      for (NodeId t : targets) {
        if (stopped_) break;
        int64_t d = state.dist.at(t.value);
        if (d < rel_src.min_hops) continue;
        if (rel_src.max_hops >= 0 && d > rel_src.max_hops) continue;
        CYPHER_ASSIGN_OR_RETURN(bool end_ok, NodeMatches(end_pattern, t));
        if (!end_ok) continue;
        Status st = ReconstructPaths(
            state, s, t, all_shortest, [&](const PathValue& path) -> Status {
              size_t mark = assigned_.size();
              if (push_start) {
                assigned_.Push(start_src.variable, Value::Node(s));
              }
              // The end binds only on its first occurrence; when it repeats
              // the start variable (`(a)-[*]->(a)`) the start's push above
              // already bound it.
              if (end_pattern.var_class == VarClass::kBind) {
                assigned_.Push(end_src.variable, Value::Node(t));
              }
              if (!rel_src.variable.empty()) {
                if (rel_pattern.var_class != VarClass::kBind) {
                  return Status::SemanticError(
                      "variable-length relationship variable '" +
                      rel_src.variable + "' is already bound");
                }
                ValueList rels;
                for (RelId r : path.rels) rels.push_back(Value::Rel(r));
                assigned_.Push(rel_src.variable, Value::List(std::move(rels)));
              }
              if (!pattern.path_variable.empty()) {
                assigned_.Push(pattern.path_variable, Value::Path(path));
              }
              size_t rel_mark = used_rels_.size();
              for (RelId r : path.rels) used_rels_.push_back(r);
              Status inner = MatchPattern(pattern_idx + 1);
              used_rels_.resize(rel_mark);
              assigned_.PopTo(mark);
              return inner;
            });
        CYPHER_RETURN_NOT_OK(st);
      }
      return Status::OK();
    });
  }

  Status MatchStep(const CompiledPath& cpath, size_t step_idx, NodeId cur,
                   PathValue* path, size_t pattern_idx) {
    if (stopped_) return Status::OK();
    const PathPattern& pattern = *cpath.source;
    if (step_idx == cpath.steps.size()) {
      size_t mark = assigned_.size();
      if (!pattern.path_variable.empty()) {
        if (cpath.path_var_conflict) {
          return Status::SemanticError("path variable '" +
                                       pattern.path_variable +
                                       "' is already bound");
        }
        if (cpath.reversed) {
          // Execution ran end->start; the named path observes syntactic
          // order.
          PathValue forward;
          forward.nodes.assign(path->nodes.rbegin(), path->nodes.rend());
          forward.rels.assign(path->rels.rbegin(), path->rels.rend());
          assigned_.Push(pattern.path_variable,
                         Value::Path(std::move(forward)));
        } else {
          assigned_.Push(pattern.path_variable, Value::Path(*path));
        }
      }
      Status st = MatchPattern(pattern_idx + 1);
      assigned_.PopTo(mark);
      return st;
    }
    const auto& [rel_pattern, node_pattern] = cpath.steps[step_idx];
    const RelPattern& rel_src = *rel_pattern.source;
    if (rel_src.var_length) {
      return MatchVarLength(cpath, step_idx, cur, path, pattern_idx);
    }
    // Bound relationship variable: a single candidate.
    if (const Value* bound = BoundValue(rel_pattern)) {
      if (bound->is_null()) return Status::OK();
      if (!bound->is_rel()) {
        return Status::ExecutionError("variable '" + rel_src.variable +
                                      "' is bound to " +
                                      ValueTypeName(bound->type()) +
                                      ", expected a relationship");
      }
      RelId id = bound->AsRel();
      if (!graph_.IsRelAlive(id) || !RelUsable(id)) return Status::OK();
      const RelData& rel = graph_.rel(id);
      NodeId next;
      bool connects = false;
      if (rel_pattern.direction != RelDirection::kRightToLeft &&
          rel.src == cur) {
        next = rel.tgt;
        connects = true;
      } else if (rel_pattern.direction != RelDirection::kLeftToRight &&
                 rel.tgt == cur) {
        next = rel.src;
        connects = true;
      }
      if (!connects) return Status::OK();
      CYPHER_ASSIGN_OR_RETURN(bool rel_ok, RelMatches(rel_pattern, id));
      if (!rel_ok) return Status::OK();
      return EnterNode(cpath, step_idx, id, next, path, pattern_idx);
    }
    bool push_rel = !rel_src.variable.empty();
    RelCandidateCursor cursor(graph_, cur, rel_pattern.direction);
    RelCandidate cand;
    while (cursor.Next(&cand)) {
      if (stopped_) break;
      CYPHER_RETURN_NOT_OK(cancel_gate_.Check());
      if (!RelUsable(cand.rel)) continue;
      CYPHER_ASSIGN_OR_RETURN(bool rel_ok, RelMatches(rel_pattern, cand.rel));
      if (!rel_ok) continue;
      size_t mark = assigned_.size();
      if (push_rel) assigned_.Push(rel_src.variable, Value::Rel(cand.rel));
      CYPHER_RETURN_NOT_OK(
          EnterNode(cpath, step_idx, cand.rel, cand.to, path, pattern_idx));
      assigned_.PopTo(mark);
    }
    return Status::OK();
  }

  /// Checks the target node pattern of a step against `next`, binds its
  /// variable, marks the relationship used, and recurses to the next step.
  Status EnterNode(const CompiledPath& cpath, size_t step_idx, RelId via,
                   NodeId next, PathValue* path, size_t pattern_idx) {
    const CompiledNode& node_pattern = cpath.steps[step_idx].second;
    const std::string& var = node_pattern.source->variable;
    const Value* bound = BoundValue(node_pattern);
    if (bound != nullptr) {
      if (bound->is_null()) return Status::OK();
      if (!bound->is_node()) {
        return Status::ExecutionError("variable '" + var + "' is bound to " +
                                      ValueTypeName(bound->type()) +
                                      ", expected a node");
      }
      if (bound->AsNode() != next) return Status::OK();
    }
    CYPHER_ASSIGN_OR_RETURN(bool node_ok, NodeMatches(node_pattern, next));
    if (!node_ok) return Status::OK();
    size_t mark = assigned_.size();
    if (!var.empty() && bound == nullptr) {
      assigned_.Push(var, Value::Node(next));
    }
    used_rels_.push_back(via);
    path->rels.push_back(via);
    path->nodes.push_back(next);
    Status st = MatchStep(cpath, step_idx + 1, next, path, pattern_idx);
    path->nodes.pop_back();
    path->rels.pop_back();
    used_rels_.pop_back();
    assigned_.PopTo(mark);
    return st;
  }

  Status MatchVarLength(const CompiledPath& cpath, size_t step_idx,
                        NodeId cur, PathValue* path, size_t pattern_idx) {
    const CompiledRel& rel_pattern = cpath.steps[step_idx].first;
    const RelPattern& rel_src = *rel_pattern.source;
    if (!rel_src.variable.empty() &&
        rel_pattern.var_class != VarClass::kBind) {
      return Status::SemanticError("variable-length relationship variable '" +
                                   rel_src.variable + "' is already bound");
    }
    if (options_.expand_workers > 1 && !stopped_) {
      CYPHER_ASSIGN_OR_RETURN(
          bool handled,
          TryVarLengthParallel(cpath, step_idx, cur, path, pattern_idx));
      if (handled) return Status::OK();
    }
    std::vector<RelId> hops;
    return VarLengthFrom(cpath, step_idx, cur, 0, &hops, path, pattern_idx);
  }

  /// The terminate half of one var-length state: if the walk may end at
  /// `cur`, binds the hop list / end node and continues with the rest of
  /// the pattern. Split out of VarLengthFrom so an emit-only parallel task
  /// can replay exactly this piece of a shallow state.
  Status TryTerminate(const CompiledPath& cpath, size_t step_idx, NodeId cur,
                      const std::vector<RelId>& hops, PathValue* path,
                      size_t pattern_idx) {
    const auto& [rel_pattern, node_pattern] = cpath.steps[step_idx];
    const RelPattern& rel_src = *rel_pattern.source;
    const std::string& node_var = node_pattern.source->variable;
    const Value* bound = BoundValue(node_pattern);
    if (bound != nullptr && (!bound->is_node() || bound->AsNode() != cur)) {
      return Status::OK();  // cannot terminate here; keep walking
    }
    CYPHER_ASSIGN_OR_RETURN(bool node_ok, NodeMatches(node_pattern, cur));
    if (!node_ok) return Status::OK();
    size_t mark = assigned_.size();
    if (!rel_src.variable.empty()) {
      ValueList rel_values;
      rel_values.reserve(hops.size());
      for (RelId r : hops) rel_values.push_back(Value::Rel(r));
      assigned_.Push(rel_src.variable, Value::List(std::move(rel_values)));
    }
    if (!node_var.empty() && BoundValue(node_pattern) == nullptr) {
      assigned_.Push(node_var, Value::Node(cur));
    }
    CYPHER_RETURN_NOT_OK(
        MatchStep(cpath, step_idx + 1, cur, path, pattern_idx));
    assigned_.PopTo(mark);
    return Status::OK();
  }

  Status VarLengthFrom(const CompiledPath& cpath, size_t step_idx,
                       NodeId cur, int64_t count, std::vector<RelId>* hops,
                       PathValue* path, size_t pattern_idx) {
    if (stopped_) return Status::OK();
    CYPHER_RETURN_NOT_OK(cancel_gate_.Check());
    const CompiledRel& rel_pattern = cpath.steps[step_idx].first;
    const RelPattern& rel_src = *rel_pattern.source;
    if (count >= rel_src.min_hops) {
      CYPHER_RETURN_NOT_OK(
          TryTerminate(cpath, step_idx, cur, *hops, path, pattern_idx));
    }
    if (rel_src.max_hops >= 0 && count >= rel_src.max_hops) {
      return Status::OK();
    }
    RelCandidateCursor cursor(graph_, cur, rel_pattern.direction);
    RelCandidate cand;
    while (cursor.Next(&cand)) {
      if (stopped_) break;
      // Within a variable-length walk the trail constraint always applies
      // (it is what bounds unbounded walks); homomorphism mode still skips
      // cross-pattern uniqueness but cannot revisit within the walk.
      if (std::find(hops->begin(), hops->end(), cand.rel) != hops->end()) {
        continue;
      }
      if (!RelUsable(cand.rel)) continue;
      CYPHER_ASSIGN_OR_RETURN(bool rel_ok, RelMatches(rel_pattern, cand.rel));
      if (!rel_ok) continue;
      used_rels_.push_back(cand.rel);
      hops->push_back(cand.rel);
      path->rels.push_back(cand.rel);
      path->nodes.push_back(cand.to);
      CYPHER_RETURN_NOT_OK(VarLengthFrom(cpath, step_idx, cand.to, count + 1,
                                         hops, path, pattern_idx));
      path->nodes.pop_back();
      path->rels.pop_back();
      hops->pop_back();
      used_rels_.pop_back();
    }
    return Status::OK();
  }

  // ---- Parallel var-length fan-out ------------------------------------------

  /// Seeds the fan-out: walks the expansion tree in the sequential engine's
  /// pre-order down to `depth_limit`, recording an emit-only task for every
  /// terminable shallow state and a full subtree task at the cutoff. On a
  /// filter-evaluation error mid-seed the arena records it as positioned
  /// after the tasks created so far (exactly where sequential execution
  /// would raise it) and `*aborted` stops the seeding.
  Status SeedVarLength(const CompiledPath& cpath, size_t step_idx, NodeId cur,
                       int64_t count, int64_t depth_limit,
                       std::vector<RelId>* hops, std::vector<NodeId>* nodes,
                       TrailArena* arena, bool* aborted) {
    const auto& [rel_pattern, node_pattern] = cpath.steps[step_idx];
    const RelPattern& rel_src = *rel_pattern.source;
    if (count >= depth_limit) {
      TrailTask task;
      task.node = cur;
      task.count = count;
      task.hops = *hops;
      task.nodes = *nodes;
      arena->AddTask(std::move(task));
      return Status::OK();
    }
    if (count >= rel_src.min_hops) {
      // The bound-end check is pure, so seeding can prune unterminable
      // states; NodeMatches can evaluate filters and stays in the task.
      const Value* bound = BoundValue(node_pattern);
      if (bound == nullptr || (bound->is_node() && bound->AsNode() == cur)) {
        TrailTask task;
        task.node = cur;
        task.count = count;
        task.emit_only = true;
        task.hops = *hops;
        task.nodes = *nodes;
        arena->AddTask(std::move(task));
      }
    }
    if (rel_src.max_hops >= 0 && count >= rel_src.max_hops) {
      return Status::OK();
    }
    RelCandidateCursor cursor(graph_, cur, rel_pattern.direction);
    RelCandidate cand;
    while (cursor.Next(&cand)) {
      if (std::find(hops->begin(), hops->end(), cand.rel) != hops->end()) {
        continue;
      }
      if (!RelUsable(cand.rel)) continue;
      Result<bool> rel_ok = RelMatches(rel_pattern, cand.rel);
      if (!rel_ok.ok()) {
        arena->SetSeedError(rel_ok.status());
        *aborted = true;
        return Status::OK();
      }
      if (!*rel_ok) continue;
      used_rels_.push_back(cand.rel);
      hops->push_back(cand.rel);
      nodes->push_back(cand.to);
      Status st = SeedVarLength(cpath, step_idx, cand.to, count + 1,
                                depth_limit, hops, nodes, arena, aborted);
      nodes->pop_back();
      hops->pop_back();
      used_rels_.pop_back();
      CYPHER_RETURN_NOT_OK(st);
      if (*aborted) return Status::OK();
    }
    return Status::OK();
  }

  /// Fans the var-length expansion at `cur` out across the shared thread
  /// pool: seeds ordered frontier tasks, runs each in a private worker
  /// engine restored from a checkpoint of this engine's state, then drains
  /// the per-task buffers in task-index order — byte-identical emission to
  /// the sequential walk. Returns false (untouched state) when the frontier
  /// is too small to be worth fanning out.
  Result<bool> TryVarLengthParallel(const CompiledPath& cpath,
                                    size_t step_idx, NodeId cur,
                                    PathValue* path, size_t pattern_idx) {
    const size_t target = options_.expand_workers * kExpandTasksPerWorker;
    TrailArena arena;
    for (int64_t depth = 1;; ++depth) {
      TrailArena attempt;
      bool aborted = false;
      std::vector<RelId> hops;
      std::vector<NodeId> nodes;
      CYPHER_RETURN_NOT_OK(SeedVarLength(cpath, step_idx, cur, 0, depth,
                                         &hops, &nodes, &attempt, &aborted));
      size_t subtrees = 0;
      for (size_t i = 0; i < attempt.size(); ++i) {
        if (!attempt.task(i).emit_only) ++subtrees;
      }
      arena = std::move(attempt);
      // Stop deepening once the walk tree is exhausted (no subtrees left to
      // split), the task budget is met, or an error cut seeding short.
      if (aborted || subtrees == 0) break;
      if (arena.size() >= target || depth >= kMaxSeedDepth) break;
    }
    if (arena.size() < 2 && arena.seed_error().ok()) return false;
    ThreadPool::Shared().Run(
        arena.size(), options_.expand_workers, [&](size_t i) {
          const TrailTask& t = arena.task(i);
          std::vector<MatchAssignment>* buf = arena.buffer(i);
          MatchSink collect =
              [buf](const MatchAssignment& assignment) -> Result<bool> {
            buf->push_back(assignment);
            return true;
          };
          MatchOptions worker_options = options_;
          worker_options.expand_workers = 0;  // workers never re-fan
          MatchEngine worker(ctx_, input_, compiled_, worker_options, collect,
                             morsel_);
          // Restore the checkpoint: full assignment stack, trail stack plus
          // this task's walk prefix, and the memo/input caches (snapshotted
          // after seeding, so seed-time fills carry over; lazily filled
          // copies diverge without racing).
          worker.assigned_ = assigned_;
          worker.memo_ = memo_;
          worker.input_cache_ = input_cache_;
          worker.used_rels_ = used_rels_;
          worker.used_rels_.insert(worker.used_rels_.end(), t.hops.begin(),
                                   t.hops.end());
          PathValue worker_path = *path;
          for (size_t k = 0; k < t.hops.size(); ++k) {
            worker_path.rels.push_back(t.hops[k]);
            worker_path.nodes.push_back(t.nodes[k]);
          }
          std::vector<RelId> hops = t.hops;
          Status st =
              t.emit_only
                  ? worker.TryTerminate(cpath, step_idx, t.node, hops,
                                        &worker_path, pattern_idx)
                  : worker.VarLengthFrom(cpath, step_idx, t.node, t.count,
                                         &hops, &worker_path, pattern_idx);
          arena.set_status(i, std::move(st));
        });
    bool stop = false;
    CYPHER_RETURN_NOT_OK(arena.Drain(sink_, &stop));
    if (stop) stopped_ = true;
    return true;
  }

  const EvalContext& ctx_;
  const Bindings& input_;
  const CompiledMatch& compiled_;
  const MatchOptions& options_;
  const MatchSink& sink_;
  const PropertyGraph& graph_;
  /// Anchor-domain restriction for the first path (parallel execution);
  /// null = unrestricted.
  const AnchorMorsel* morsel_ = nullptr;
  MatchAssignment assigned_;
  /// Relationships used by the (partial) match, LIFO: pushed entering a
  /// step, popped unwinding it. RelUsable scans it linearly.
  std::vector<RelId> used_rels_;
  /// Per-record cache for row-dependent filter values, indexed by
  /// CompiledFilter::memo_slot.
  std::vector<std::optional<Value>> memo_;
  /// Per-record cache of driving-record variable values, indexed by
  /// input_slot (see PrefetchInputs).
  std::vector<std::optional<Value>> input_cache_;
  /// Amortized watchdog poll for this engine's walks (one per thread: the
  /// parallel fan-outs give every worker engine or task its own gate).
  CancelGate cancel_gate_;
  bool stopped_ = false;
};

}  // namespace

Status MatchCompiled(const EvalContext& ctx, const Bindings& bindings,
                     const CompiledMatch& compiled,
                     const MatchOptions& options, const MatchSink& sink) {
  return MatchEngine(ctx, bindings, compiled, options, sink).Run();
}

size_t AnchorScanDomain(const PropertyGraph& graph,
                        const CompiledMatch& compiled) {
  if (compiled.impossible || compiled.paths.empty()) return 0;
  const CompiledPath& path = compiled.paths.front();
  switch (path.anchor.kind) {
    case AnchorKind::kLabelScan:
      return graph.LabelBucketSize(path.anchor.label);
    case AnchorKind::kAllScan:
      return graph.node_capacity();
    default:
      return 0;
  }
}

Status MatchCompiledMorsel(const EvalContext& ctx, const Bindings& bindings,
                           const CompiledMatch& compiled,
                           const MatchOptions& options,
                           const AnchorMorsel& morsel, const MatchSink& sink) {
  CYPHER_CHECK(AnchorScanDomain(*ctx.graph, compiled) > 0 &&
               "anchor morsels require a scan anchor");
  return MatchEngine(ctx, bindings, compiled, options, sink, &morsel).Run();
}

Status MatchPatterns(const EvalContext& ctx, const Bindings& bindings,
                     const std::vector<PathPattern>& patterns,
                     const MatchOptions& options, const MatchSink& sink) {
  CompiledMatch compiled = CompileMatch(ctx, bindings, patterns);
  return MatchCompiled(ctx, bindings, compiled, options, sink);
}

Result<bool> HasMatch(const EvalContext& ctx, const Bindings& bindings,
                      const std::vector<PathPattern>& patterns,
                      const MatchOptions& options) {
  bool found = false;
  Status st = MatchPatterns(ctx, bindings, patterns, options,
                            [&found](const MatchAssignment&) -> Result<bool> {
                              found = true;
                              return false;  // stop at first match
                            });
  CYPHER_RETURN_NOT_OK(st);
  return found;
}

}  // namespace cypher
