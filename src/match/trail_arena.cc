#include "match/trail_arena.h"

#include <algorithm>
#include <utility>

#include "common/result.h"

namespace cypher {

size_t TrailArena::AddTask(TrailTask task) {
  tasks_.push_back(std::move(task));
  buffers_.emplace_back();
  statuses_.emplace_back();
  return tasks_.size() - 1;
}

Status TrailArena::Drain(const MatchSink& sink, bool* stopped) const {
  // The first failure in sequential position order: a task's status at its
  // index, or the seed error positioned after every task.
  size_t fail = tasks_.size() + 1;
  if (!seed_error_.ok()) fail = tasks_.size();
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (!statuses_[i].ok()) {
      fail = i;
      break;
    }
  }
  // Emit everything the sequential engine would have emitted before the
  // failure point; a sink stop wins over any later error (sequential
  // execution stops enumerating and never reaches it).
  for (size_t i = 0; i < std::min(fail, tasks_.size()); ++i) {
    for (const MatchAssignment& assignment : buffers_[i]) {
      CYPHER_ASSIGN_OR_RETURN(bool more, sink(assignment));
      if (!more) {
        *stopped = true;
        return Status::OK();
      }
    }
  }
  if (fail < tasks_.size()) return statuses_[fail];
  if (fail == tasks_.size()) return seed_error_;
  return Status::OK();
}

}  // namespace cypher
