#ifndef CYPHER_TABLE_TABLE_H_
#define CYPHER_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "value/value.h"

namespace cypher {

/// The driving table of the paper (Section 2): a bag of consistent records,
/// i.e. key-value maps sharing one key set. Stored row-major with a shared
/// column header; cells are Values.
///
/// Clause semantics `[[C]] : (G, T) -> (G', T')` thread tables through the
/// interpreter; Table is a value type (copy = deep copy of rows, cheap cell
/// copies thanks to Value's shared representations).
class Table {
 public:
  /// The empty table: no columns, no rows. MATCH on this yields nothing.
  Table() = default;

  /// T() of the paper: the table with a single empty record, the input to
  /// every query.
  static Table Unit();

  /// A table with the given columns and no rows.
  static Table WithColumns(std::vector<std::string> columns);

  const std::vector<std::string>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  static constexpr size_t kNoColumn = static_cast<size_t>(-1);

  /// Index of a column, or kNoColumn.
  size_t ColumnIndex(std::string_view name) const;
  bool HasColumn(std::string_view name) const {
    return ColumnIndex(name) != kNoColumn;
  }

  /// Appends a column (must be fresh); existing rows get null cells.
  /// Returns the new column's index.
  size_t AddColumn(const std::string& name);

  /// Appends a row; its arity must equal num_columns().
  void AddRow(std::vector<Value> row);

  const std::vector<Value>& row(size_t i) const { return rows_[i]; }
  std::vector<Value>& mutable_row(size_t i) { return rows_[i]; }
  const std::vector<std::vector<Value>>& rows() const { return rows_; }

  Value& At(size_t row, size_t col) { return rows_[row][col]; }
  const Value& At(size_t row, size_t col) const { return rows_[row][col]; }

  void Clear() { rows_.clear(); }

  /// Bag union (the paper's ⊎). Column sets must be equal; b's rows are
  /// re-ordered to a's column order.
  static Result<Table> BagUnion(const Table& a, const Table& b);

  /// Removes duplicate rows under grouping equivalence (null = null),
  /// keeping first occurrences (used by DISTINCT and UNION).
  Table Distinct() const;

 private:
  std::vector<std::string> columns_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::vector<Value>> rows_;
};

/// Hash/equality adapters for row keys under grouping equivalence, for use
/// with unordered containers (DISTINCT, aggregation, Grouping MERGE).
struct ValueVecHash {
  uint64_t operator()(const std::vector<Value>& vec) const;
};
struct ValueVecEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;
};

}  // namespace cypher

#endif  // CYPHER_TABLE_TABLE_H_
