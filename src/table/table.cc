#include "table/table.h"

#include <unordered_set>

#include "common/check.h"
#include "value/compare.h"

namespace cypher {

Table Table::Unit() {
  Table t;
  t.rows_.emplace_back();
  return t;
}

Table Table::WithColumns(std::vector<std::string> columns) {
  Table t;
  for (auto& c : columns) t.AddColumn(c);
  return t;
}

size_t Table::ColumnIndex(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return kNoColumn;
  return it->second;
}

size_t Table::AddColumn(const std::string& name) {
  CYPHER_CHECK(!HasColumn(name));
  size_t idx = columns_.size();
  columns_.push_back(name);
  index_.emplace(name, idx);
  for (auto& row : rows_) row.emplace_back();
  return idx;
}

void Table::AddRow(std::vector<Value> row) {
  CYPHER_CHECK(row.size() == columns_.size());
  rows_.push_back(std::move(row));
}

Result<Table> Table::BagUnion(const Table& a, const Table& b) {
  // Column sets must agree (order-insensitively).
  if (a.num_columns() != b.num_columns()) {
    return Status::ExecutionError(
        "UNION branches return different numbers of columns");
  }
  std::vector<size_t> remap(b.num_columns());
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    size_t j = b.ColumnIndex(a.columns_[i]);
    if (j == kNoColumn) {
      return Status::ExecutionError("UNION branches return different columns: '" +
                                    a.columns_[i] + "' missing from one branch");
    }
    remap[i] = j;
  }
  Table out = WithColumns(a.columns_);
  for (const auto& row : a.rows_) out.rows_.push_back(row);
  for (const auto& row : b.rows_) {
    std::vector<Value> mapped(a.num_columns());
    for (size_t i = 0; i < a.num_columns(); ++i) mapped[i] = row[remap[i]];
    out.rows_.push_back(std::move(mapped));
  }
  return out;
}

Table Table::Distinct() const {
  Table out = WithColumns(columns_);
  std::unordered_set<std::vector<Value>, ValueVecHash, ValueVecEq> seen;
  for (const auto& row : rows_) {
    if (seen.insert(row).second) out.rows_.push_back(row);
  }
  return out;
}

uint64_t ValueVecHash::operator()(const std::vector<Value>& vec) const {
  uint64_t h = 59;
  for (const Value& v : vec) {
    h ^= HashValue(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool ValueVecEq::operator()(const std::vector<Value>& a,
                            const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!GroupEquals(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace cypher
