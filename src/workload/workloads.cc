#include "workload/workloads.h"

#include "common/random.h"

namespace cypher::workload {

namespace {

Value Row(std::initializer_list<std::pair<const char*, Value>> entries) {
  ValueMap map;
  for (const auto& [key, value] : entries) map.emplace(key, value);
  return Value::Map(std::move(map));
}

}  // namespace

Status LoadMarketplace(GraphDatabase* db) {
  auto results = db->ExecuteScript(R"(
    CREATE (v1:Vendor {id: 60, name: 'cStore'});
    CREATE (p1:Product {id: 125, name: 'laptop'});
    CREATE (p2:Product {id: 125, name: 'notebook'});
    CREATE (p3:Product {id: 85, name: 'tablet'});
    CREATE (u1:User {id: 89, name: 'Bob'});
    CREATE (u2:User {id: 99, name: 'Jane'});
    MATCH (v:Vendor {name: 'cStore'}), (p:Product {name: 'laptop'})
      CREATE (v)-[:OFFERS]->(p);
    MATCH (v:Vendor {name: 'cStore'}), (p:Product {name: 'notebook'})
      CREATE (v)-[:OFFERS]->(p);
    MATCH (u:User {name: 'Bob'}), (p:Product {name: 'laptop'})
      CREATE (u)-[:ORDERED]->(p);
    MATCH (u:User {name: 'Bob'}), (p:Product {name: 'tablet'})
      CREATE (u)-[:ORDERED]->(p);
    MATCH (u:User {name: 'Jane'}), (p:Product {name: 'notebook'})
      CREATE (u)-[:ORDERED]->(p);
  )");
  return results.status();
}

Value Example3Rows() {
  return Value::List({
      Row({{"u", Value::String("u1")},
           {"p", Value::String("p")},
           {"v", Value::String("v1")}}),
      Row({{"u", Value::String("u2")},
           {"p", Value::String("p")},
           {"v", Value::String("v2")}}),
      Row({{"u", Value::String("u1")},
           {"p", Value::String("p")},
           {"v", Value::String("v2")}}),
  });
}

std::string Example3SetupScript() {
  return "CREATE (:N {k: 'u1'}), (:N {k: 'u2'}), (:N {k: 'p'}), "
         "(:N {k: 'v1'}), (:N {k: 'v2'})";
}

std::string Example3Query(const std::string& merge_keyword) {
  return "UNWIND $rows AS row "
         "MATCH (user:N {k: row.u}), (product:N {k: row.p}), "
         "(vendor:N {k: row.v}) " +
         merge_keyword +
         " (user)-[:ORDERED]->(product)<-[:OFFERS]-(vendor)";
}

Value Example5Rows() {
  auto row = [](Value cid, Value pid, Value date) {
    ValueMap map;
    map.emplace("cid", std::move(cid));
    map.emplace("pid", std::move(pid));
    map.emplace("date", std::move(date));
    return Value::Map(std::move(map));
  };
  return Value::List({
      row(Value::Int(98), Value::Int(125), Value::String("2018-06-23")),
      row(Value::Int(98), Value::Int(125), Value::String("2018-07-06")),
      row(Value::Int(98), Value::Null(), Value::Null()),
      row(Value::Int(98), Value::Null(), Value::Null()),
      row(Value::Int(99), Value::Int(125), Value::String("2018-03-11")),
      row(Value::Int(99), Value::Null(), Value::Null()),
  });
}

std::string Example5Query(const std::string& merge_keyword) {
  return "UNWIND $rows AS row "
         "WITH row.cid AS cid, row.pid AS pid, row.date AS date " +
         merge_keyword + " (:User {id: cid})-[:ORDERED]->(:Product {id: pid})";
}

Value Example6Rows() {
  auto row = [](int64_t bid, int64_t pid, int64_t sid) {
    ValueMap map;
    map.emplace("bid", Value::Int(bid));
    map.emplace("pid", Value::Int(pid));
    map.emplace("sid", Value::Int(sid));
    return Value::Map(std::move(map));
  };
  return Value::List({row(98, 125, 97), row(99, 85, 98)});
}

std::string Example6Query(const std::string& merge_keyword) {
  return "UNWIND $rows AS row "
         "WITH row.bid AS bid, row.pid AS pid, row.sid AS sid " +
         merge_keyword +
         " (:User {id: bid})-[:ORDERED]->(:Product {id: pid})"
         "<-[:OFFERS]-(:User {id: sid})";
}

std::string Example7SetupScript() {
  return "CREATE (:P {k: 'p1'}), (:P {k: 'p2'}), (:P {k: 'p3'}), "
         "(:P {k: 'p4'})";
}

std::string Example7Query(const std::string& merge_keyword) {
  return "MATCH (a:P {k: 'p1'}), (b:P {k: 'p2'}), (c:P {k: 'p3'}), "
         "(d:P {k: 'p1'}), (e:P {k: 'p2'}), (tgt:P {k: 'p4'}) " +
         merge_keyword +
         " (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)"
         "-[:BOUGHT]->(tgt)";
}

std::string Example7RematchQuery() {
  return "MATCH (a)-[:TO]->(b)-[:TO]->(c)-[:TO]->(d)-[:TO]->(e)"
         "-[:BOUGHT]->(tgt) RETURN count(*) AS matches";
}

Value RandomOrderRows(size_t n, int64_t num_users, int64_t num_products,
                      int null_permille, uint64_t seed) {
  SplitMix64 rng(seed);
  ValueList rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ValueMap map;
    map.emplace("cid", Value::Int(rng.NextInRange(1, num_users)));
    bool is_null =
        static_cast<int>(rng.NextBelow(1000)) < null_permille;
    map.emplace("pid", is_null
                           ? Value::Null()
                           : Value::Int(rng.NextInRange(1, num_products)));
    map.emplace("date",
                Value::String("2018-" +
                              std::to_string(1 + rng.NextBelow(12)) + "-" +
                              std::to_string(1 + rng.NextBelow(28))));
    rows.push_back(Value::Map(std::move(map)));
  }
  return Value::List(std::move(rows));
}

Status LoadRandomMarketplace(GraphDatabase* db, int64_t users,
                             int64_t products, int64_t orders, uint64_t seed) {
  // Bulk-build through the public API: UNWIND a generated id list.
  ValueList user_ids;
  for (int64_t i = 1; i <= users; ++i) user_ids.push_back(Value::Int(i));
  CYPHER_RETURN_NOT_OK(
      db->Execute("UNWIND $ids AS id CREATE (:User {id: id})",
                  {{"ids", Value::List(std::move(user_ids))}})
          .status());
  ValueList product_ids;
  for (int64_t i = 1; i <= products; ++i) product_ids.push_back(Value::Int(i));
  CYPHER_RETURN_NOT_OK(
      db->Execute("UNWIND $ids AS id CREATE (:Product {id: id})",
                  {{"ids", Value::List(std::move(product_ids))}})
          .status());
  SplitMix64 rng(seed);
  ValueList order_rows;
  for (int64_t i = 0; i < orders; ++i) {
    ValueMap map;
    map.emplace("u", Value::Int(rng.NextInRange(1, users)));
    map.emplace("p", Value::Int(rng.NextInRange(1, products)));
    order_rows.push_back(Value::Map(std::move(map)));
  }
  return db
      ->Execute(
          "UNWIND $rows AS row "
          "MATCH (u:User {id: row.u}), (p:Product {id: row.p}) "
          "CREATE (u)-[:ORDERED]->(p)",
          {{"rows", Value::List(std::move(order_rows))}})
      .status();
}

Value RandomClickstreamRows(size_t n, int64_t num_products, int hops,
                            uint64_t seed) {
  SplitMix64 rng(seed);
  ValueList rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ValueMap map;
    for (int h = 0; h <= hops; ++h) {
      map.emplace("p" + std::to_string(h),
                  Value::Int(rng.NextInRange(1, num_products)));
    }
    rows.push_back(Value::Map(std::move(map)));
  }
  return Value::List(std::move(rows));
}

}  // namespace cypher::workload
