#ifndef CYPHER_WORKLOAD_WORKLOADS_H_
#define CYPHER_WORKLOAD_WORKLOADS_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "cypher/database.h"
#include "value/value.h"

namespace cypher::workload {

// =============================================================================
// Paper scenarios (Figures 1, 6-9; Examples 1-7)
// =============================================================================

/// Loads the solid-line marketplace graph of Figure 1 (vendor v1 "cStore",
/// products laptop/notebook/tablet, users Bob and Jane, OFFERS/ORDERED
/// relationships) via Cypher CREATE statements.
Status LoadMarketplace(GraphDatabase* db);

/// Example 3 / Figure 6 driving table as a parameter list: records
/// (u1,p,v1), (u2,p,v2), (u1,p,v2) by node marker names.
Value Example3Rows();

/// The statement that seeds Example 3's five relationship-less nodes.
std::string Example3SetupScript();

/// The UNWIND+MATCH+MERGE statement reproducing Example 3's clause over
/// `merge_keyword` ("MERGE", "MERGE ALL", or "MERGE SAME").
std::string Example3Query(const std::string& merge_keyword);

/// Example 5 / Figure 7 driving table (cid, pid, date) with duplicate rows
/// and nulls, exactly as printed in the paper.
Value Example5Rows();

/// The Example 5 statement over the given merge keyword:
/// ... MERGE <kw> (:User{id:cid})-[:ORDERED]->(:Product{id:pid}).
std::string Example5Query(const std::string& merge_keyword);

/// Example 6 / Figure 8 driving table (bid, pid, sid).
Value Example6Rows();
std::string Example6Query(const std::string& merge_keyword);

/// Example 7 / Figure 9: seeds products p1..p4 and merges the
/// search-and-purchase chain (a)-[:TO]->...(e)-[:BOUGHT]->(tgt).
std::string Example7SetupScript();
std::string Example7Query(const std::string& merge_keyword);

/// The re-match probe of Example 7 (same chain as a MATCH; expected to find
/// nothing under trail matching after Strong Collapse, one match under
/// homomorphism matching).
std::string Example7RematchQuery();

// =============================================================================
// Scalable synthetic workloads (benchmarks)
// =============================================================================

/// Order-import rows shaped like Example 5: `n` records over
/// `num_users` users and `num_products` products; `null_permille` of the
/// product ids are null (dirty import data). Deterministic in `seed`.
Value RandomOrderRows(size_t n, int64_t num_users, int64_t num_products,
                      int null_permille, uint64_t seed);

/// Populates `db` with a random user/product graph: `users` :User nodes,
/// `products` :Product nodes, and `orders` random :ORDERED relationships.
Status LoadRandomMarketplace(GraphDatabase* db, int64_t users,
                             int64_t products, int64_t orders, uint64_t seed);

/// Clickstream rows shaped like Example 7: each record references `hops`+1
/// distinct product markers out of `num_products`. Used by the Strong
/// Collapse scaling bench.
Value RandomClickstreamRows(size_t n, int64_t num_products, int hops,
                            uint64_t seed);

}  // namespace cypher::workload

#endif  // CYPHER_WORKLOAD_WORKLOADS_H_
