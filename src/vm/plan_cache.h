#ifndef CYPHER_VM_PLAN_CACHE_H_
#define CYPHER_VM_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "value/value.h"
#include "vm/program.h"

namespace cypher {

/// One session's view of cache effectiveness. The PlanCacheStats counters
/// below are process-global (every session shares one cache); each session
/// — the writer database's default session and every snapshot ReadSession —
/// additionally tallies its own lookups here so the shell can report "this
/// session's" hit rate next to the global one.
struct SessionCacheCounters {
  uint64_t hits = 0;    // raw + shape
  uint64_t misses = 0;  // parsed and compiled fresh
};

/// Point-in-time counters (see PlanCache). `hits` = raw_hits + shape_hits.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t raw_hits = 0;    // L1: exact statement text seen before
  uint64_t shape_hits = 0;  // L2: new text, known normalized shape
  size_t entries = 0;       // raw + shape entries currently resident
};

/// Thread-safe two-level parametrized plan cache.
///
/// Level 1 keys on the raw statement text: a hit skips parsing entirely and
/// replays the literals extracted when the text was first seen. Level 2
/// keys on the normalized shape (the auto-parametrized statement printed
/// back to Cypher), so `... {id: 1}` and `... {id: 2}` share one compiled
/// plan. Both levels store the same shared_ptr<const CachedPlan>; raw
/// entries additionally carry their literal vector.
///
/// Callers build the key strings: an options fingerprint (execution options
/// that change semantics must not share plans) plus a "raw:" / "shape:"
/// namespace prefix so the two levels can never collide.
///
/// Sharded LRU: keys hash to one of kNumShards independently-locked
/// shards, each with its own recency list and per-shard capacity, so
/// concurrent sessions rarely contend. Counters are atomics updated
/// outside the shard locks.
class PlanCache {
 public:
  static constexpr size_t kNumShards = 8;

  /// `capacity` is the total entry budget, split evenly across shards
  /// (minimum one per shard).
  explicit PlanCache(size_t capacity = 256);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// L1 lookup. A hit counts hits+raw_hits and returns the plan plus a copy
  /// of the extracted literals (positional: literal i binds `$#i`). A miss
  /// counts nothing — the subsequent shape lookup decides hit vs miss.
  std::optional<std::pair<std::shared_ptr<const CachedPlan>,
                          std::vector<Value>>>
  LookupRaw(const std::string& key);

  /// L2 lookup. A hit counts hits+shape_hits; a miss counts misses.
  std::shared_ptr<const CachedPlan> LookupShape(const std::string& key);

  /// Side-effect-free shape probe for EXPLAIN: reports whether executing
  /// the statement now would hit, without touching counters or recency.
  bool PeekShape(const std::string& key) const;

  void InsertRaw(const std::string& key,
                 std::shared_ptr<const CachedPlan> plan,
                 std::vector<Value> literals);
  void InsertShape(const std::string& key,
                   std::shared_ptr<const CachedPlan> plan);

  /// Drops every entry (counters keep accumulating). Called when the graph
  /// object itself is replaced (load from snapshot, WAL recovery): resident
  /// plans hold match-plan slots stamped against the old graph, and a
  /// coincidentally-equal stamp must not revive them.
  void Clear();

  PlanCacheStats Stats() const;

  /// Zeroes the counters (shell `:cache clear` resets both).
  void ResetStats();

 private:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    std::vector<Value> literals;  // raw entries only
    std::list<std::string>::iterator lru;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
    std::list<std::string> order;  // front = most recently used
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  void Touch(Shard& shard, Entry& entry, const std::string& key);
  void Insert(const std::string& key, std::shared_ptr<const CachedPlan> plan,
              std::vector<Value> literals);

  size_t per_shard_capacity_;
  Shard shards_[kNumShards];

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> raw_hits_{0};
  std::atomic<uint64_t> shape_hits_{0};
};

}  // namespace cypher

#endif  // CYPHER_VM_PLAN_CACHE_H_
