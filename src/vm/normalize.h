#ifndef CYPHER_VM_NORMALIZE_H_
#define CYPHER_VM_NORMALIZE_H_

#include <cstddef>
#include <vector>

#include "ast/query.h"
#include "value/value.h"

namespace cypher {

/// Auto-parametrization: hoists every int, float, and string literal out of
/// the statement into an implicit parameter slot, rewriting the literal
/// node to `$#N` (N = slot index, appended to `literals` in encounter
/// order). Two statements differing only in such literals then normalize
/// to the same shape — the plan-cache key — and share one compiled plan.
///
/// Bool and null literals stay inline: they have two (one) possible values,
/// so folding them into the shape costs nothing and keeps predicates like
/// `WHERE x = true` foldable at pattern-compile time.
///
/// The `#N` namespace cannot collide with user parameters — the lexer
/// requires `$` to be followed by an identifier character, so `$#0` is
/// unwritable in source text.
///
/// Returns the number of literals extracted.
size_t ParametrizeQuery(Query* query, std::vector<Value>* literals);

/// True if any clause (including FOREACH / CALL subquery bodies) is DDL —
/// CREATE/DROP INDEX or CREATE/DROP CONSTRAINT. DDL statements bypass the
/// plan cache: they are rare, self-invalidating (an index flips planner
/// decisions), and idempotency checks want the interpreter's exact path.
bool HasDdlClause(const Query& query);

/// True when no clause (including FOREACH / CALL subquery bodies) updates
/// the graph and none is DDL — i.e. the statement is pure MATCH / UNWIND /
/// WITH / RETURN. Snapshot read sessions admit exactly these statements:
/// they can run without a journal against a pinned epoch.
bool IsReadOnlyQuery(const Query& query);

}  // namespace cypher

#endif  // CYPHER_VM_NORMALIZE_H_
