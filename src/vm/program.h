#ifndef CYPHER_VM_PROGRAM_H_
#define CYPHER_VM_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ast/query.h"
#include "graph/graph.h"
#include "match/compiled_pattern.h"
#include "vm/expr_program.h"

namespace cypher {

/// Everything PlanAnchor and the reversal/expansion cost model read from
/// the graph: interner sizes (a grown interner can resolve a label/type/key
/// that previously compiled to "impossible"), index presence (the epoch
/// counts creations and drops), alive-entity counts, and every per-label
/// cardinality (folded into one hash). Two executions with equal stamps see
/// identical planner inputs, so a cached match plan replays byte-identically
/// — including emission order. Over-invalidation (a write that changes
/// counts without changing the best plan) only costs a re-compile.
struct PlanStamp {
  size_t num_label_symbols = 0;
  size_t num_type_symbols = 0;
  size_t num_key_symbols = 0;
  uint64_t index_epoch = 0;
  size_t num_nodes = 0;
  size_t num_rels = 0;
  uint64_t label_counts_hash = 0;
  /// Snapshot-epoch component: 0 for writer compiles (latest state), pinned
  /// epoch + 1 for snapshot-session compiles. Pinned compiles skip index
  /// anchors (property indexes are unversioned), so a cached plan must never
  /// migrate between a snapshot session and the writer, nor across epochs —
  /// folding the pin into the stamp makes the slot self-invalidating.
  uint64_t pinned_epoch = 0;

  bool operator==(const PlanStamp& o) const {
    return num_label_symbols == o.num_label_symbols &&
           num_type_symbols == o.num_type_symbols &&
           num_key_symbols == o.num_key_symbols &&
           index_epoch == o.index_epoch && num_nodes == o.num_nodes &&
           num_rels == o.num_rels &&
           label_counts_hash == o.label_counts_hash &&
           pinned_epoch == o.pinned_epoch;
  }
};

PlanStamp TakeStamp(const PropertyGraph& graph);

/// A MATCH / OPTIONAL MATCH step. The pattern plan cannot be compiled at
/// statement-compile time — anchor selection reads live graph statistics —
/// so the step holds a stamped slot that Vm fills lazily and revalidates
/// per execution (see Vm::RunMatchStep for the small/large-table split).
/// The slot is shared by every session running this cached plan; `mu`
/// guards it.
struct MatchStepData {
  const MatchClause* clause = nullptr;

  mutable std::mutex mu;
  mutable PlanStamp stamp;
  mutable std::shared_ptr<const CompiledMatch> plan;  // null until compiled
};

/// A WITH / RETURN step whose pipeline the compiler fully covers: plain
/// item list (no `*`, no aggregates, no ORDER BY), optional DISTINCT,
/// optional WHERE, optional SKIP/LIMIT. Anything richer stays a kClause
/// step and runs the reference projection executor.
struct ProjectStepData {
  const ProjectionBody* body = nullptr;
  const Expr* where = nullptr;  // WITH ... WHERE only
  std::vector<std::string> aliases;
  std::vector<ExprProgram> items;  // one per body->items, same order
  ExprProgram where_program;       // meaningful when where != nullptr
};

enum class StepKind {
  kMatch,    // MatchStepData: cached-plan pattern enumeration
  kProject,  // ProjectStepData: bytecode projection pipeline
  kClause,   // interpreter delegation (ExecClause) for everything else
};

/// One clause of one UNION branch, lowered.
struct Step {
  StepKind kind = StepKind::kClause;
  const Clause* clause = nullptr;  // always set; names errors, drives kClause
  std::unique_ptr<MatchStepData> match;      // kind == kMatch
  std::unique_ptr<ProjectStepData> project;  // kind == kProject
};

/// A whole statement lowered for the dispatch loop: one step list per
/// UNION branch, mirroring Query::parts. Immutable after compilation
/// except for the stamped match-plan slots (internally locked), so one
/// Program is shared by concurrent sessions via the plan cache.
struct Program {
  struct Part {
    std::vector<Step> steps;
  };
  std::vector<Part> parts;
};

/// A plan-cache entry: the (auto-parametrized) AST plus its bytecode. The
/// Query owns every Clause and Expr the Program and its ExprPrograms point
/// into — clause nodes are heap-allocated behind ClausePtr, so the pointers
/// stay stable for the life of the entry.
struct CachedPlan {
  Query ast;
  std::unique_ptr<Program> program;
  size_t num_params = 0;  // auto-extracted literal slots ($#0 .. $#N-1)
};

}  // namespace cypher

#endif  // CYPHER_VM_PROGRAM_H_
