#include "vm/normalize.h"

#include <memory>
#include <string>
#include <utility>

#include "ast/clause.h"
#include "ast/expr.h"
#include "ast/pattern.h"

namespace cypher {

namespace {

/// Mutating walker over every ExprPtr slot of a statement. Visits children
/// before deciding about the node itself, but only literals are rewritten,
/// and a literal has no children — so order does not matter beyond keeping
/// slot numbering in syntactic (source) order for readability.
class Parametrizer {
 public:
  explicit Parametrizer(std::vector<Value>* literals) : literals_(literals) {}

  void WalkExpr(ExprPtr* slot) {
    if (slot == nullptr || *slot == nullptr) return;
    Expr& e = **slot;
    switch (e.kind) {
      case ExprKind::kLiteral: {
        Value& v = static_cast<LiteralExpr&>(e).value;
        if (v.is_int() || v.is_float() || v.is_string()) {
          std::string name = "#" + std::to_string(literals_->size());
          literals_->push_back(std::move(v));
          *slot = std::make_unique<ParameterExpr>(std::move(name));
        }
        return;
      }
      case ExprKind::kParameter:
      case ExprKind::kVariable:
      case ExprKind::kCountStar:
        return;
      case ExprKind::kProperty:
        WalkExpr(&static_cast<PropertyExpr&>(e).object);
        return;
      case ExprKind::kHasLabels:
        WalkExpr(&static_cast<HasLabelsExpr&>(e).object);
        return;
      case ExprKind::kUnary:
        WalkExpr(&static_cast<UnaryExpr&>(e).operand);
        return;
      case ExprKind::kBinary: {
        auto& b = static_cast<BinaryExpr&>(e);
        WalkExpr(&b.left);
        WalkExpr(&b.right);
        return;
      }
      case ExprKind::kIsNull:
        WalkExpr(&static_cast<IsNullExpr&>(e).operand);
        return;
      case ExprKind::kList:
        for (ExprPtr& item : static_cast<ListExpr&>(e).items) WalkExpr(&item);
        return;
      case ExprKind::kMap:
        for (auto& [key, value] : static_cast<MapExpr&>(e).entries) {
          WalkExpr(&value);
        }
        return;
      case ExprKind::kIndex: {
        auto& i = static_cast<IndexExpr&>(e);
        WalkExpr(&i.object);
        WalkExpr(&i.index);
        return;
      }
      case ExprKind::kFunction:
        for (ExprPtr& arg : static_cast<FunctionExpr&>(e).args) WalkExpr(&arg);
        return;
      case ExprKind::kCase: {
        auto& c = static_cast<CaseExpr&>(e);
        for (auto& [cond, value] : c.whens) {
          WalkExpr(&cond);
          WalkExpr(&value);
        }
        WalkExpr(&c.otherwise);
        return;
      }
      case ExprKind::kListComprehension: {
        auto& l = static_cast<ListComprehensionExpr&>(e);
        WalkExpr(&l.list);
        WalkExpr(&l.where);
        WalkExpr(&l.projection);
        return;
      }
      case ExprKind::kQuantifier: {
        auto& q = static_cast<QuantifierExpr&>(e);
        WalkExpr(&q.list);
        WalkExpr(&q.predicate);
        return;
      }
      case ExprKind::kReduce: {
        auto& r = static_cast<ReduceExpr&>(e);
        WalkExpr(&r.init);
        WalkExpr(&r.list);
        WalkExpr(&r.body);
        return;
      }
      case ExprKind::kPatternPredicate:
        WalkPath(&static_cast<PatternPredicateExpr&>(e).pattern);
        return;
      case ExprKind::kMapProjection: {
        auto& m = static_cast<MapProjectionExpr&>(e);
        WalkExpr(&m.subject);
        for (MapProjectionItem& item : m.items) WalkExpr(&item.value);
        return;
      }
    }
  }

  void WalkPath(PathPattern* path) {
    WalkNode(&path->start);
    for (auto& [rel, node] : path->steps) {
      for (auto& [key, value] : rel.properties) WalkExpr(&value);
      WalkNode(&node);
    }
  }

  void WalkNode(NodePattern* node) {
    for (auto& [key, value] : node->properties) WalkExpr(&value);
  }

  void WalkBody(ProjectionBody* body) {
    for (ReturnItem& item : body->items) WalkExpr(&item.expr);
    for (SortItem& item : body->order_by) WalkExpr(&item.expr);
    WalkExpr(&body->skip);
    WalkExpr(&body->limit);
  }

  void WalkSetItems(std::vector<SetItem>* items) {
    for (SetItem& item : *items) {
      WalkExpr(&item.target);
      WalkExpr(&item.value);
    }
  }

  void WalkClause(Clause* clause) {
    switch (clause->kind) {
      case ClauseKind::kMatch: {
        auto& c = static_cast<MatchClause&>(*clause);
        for (PathPattern& p : c.patterns) WalkPath(&p);
        WalkExpr(&c.where);
        return;
      }
      case ClauseKind::kUnwind:
        WalkExpr(&static_cast<UnwindClause&>(*clause).list);
        return;
      case ClauseKind::kWith: {
        auto& c = static_cast<WithClause&>(*clause);
        WalkBody(&c.body);
        WalkExpr(&c.where);
        return;
      }
      case ClauseKind::kReturn:
        WalkBody(&static_cast<ReturnClause&>(*clause).body);
        return;
      case ClauseKind::kCreate: {
        auto& c = static_cast<CreateClause&>(*clause);
        for (PathPattern& p : c.patterns) WalkPath(&p);
        return;
      }
      case ClauseKind::kSet:
        WalkSetItems(&static_cast<SetClause&>(*clause).items);
        return;
      case ClauseKind::kRemove:
        for (RemoveItem& item : static_cast<RemoveClause&>(*clause).items) {
          WalkExpr(&item.target);
        }
        return;
      case ClauseKind::kDelete:
        for (ExprPtr& e : static_cast<DeleteClause&>(*clause).exprs) {
          WalkExpr(&e);
        }
        return;
      case ClauseKind::kMerge: {
        auto& c = static_cast<MergeClause&>(*clause);
        for (PathPattern& p : c.patterns) WalkPath(&p);
        WalkSetItems(&c.on_create);
        WalkSetItems(&c.on_match);
        return;
      }
      case ClauseKind::kForeach: {
        auto& c = static_cast<ForeachClause&>(*clause);
        WalkExpr(&c.list);
        for (ClausePtr& inner : c.body) WalkClause(inner.get());
        return;
      }
      case ClauseKind::kCreateIndex:
      case ClauseKind::kConstraint:
        return;  // label/key are names, not expressions
      case ClauseKind::kCallSubquery:
        for (ClausePtr& inner :
             static_cast<CallSubqueryClause&>(*clause).body) {
          WalkClause(inner.get());
        }
        return;
    }
  }

 private:
  std::vector<Value>* literals_;
};

bool ClauseHasDdl(const Clause& clause) {
  switch (clause.kind) {
    case ClauseKind::kCreateIndex:
    case ClauseKind::kConstraint:
      return true;
    case ClauseKind::kForeach:
      for (const ClausePtr& inner :
           static_cast<const ForeachClause&>(clause).body) {
        if (ClauseHasDdl(*inner)) return true;
      }
      return false;
    case ClauseKind::kCallSubquery:
      for (const ClausePtr& inner :
           static_cast<const CallSubqueryClause&>(clause).body) {
        if (ClauseHasDdl(*inner)) return true;
      }
      return false;
    default:
      return false;
  }
}

}  // namespace

size_t ParametrizeQuery(Query* query, std::vector<Value>* literals) {
  size_t before = literals->size();
  Parametrizer walker(literals);
  for (SingleQuery& part : query->parts) {
    for (ClausePtr& clause : part.clauses) walker.WalkClause(clause.get());
  }
  return literals->size() - before;
}

bool HasDdlClause(const Query& query) {
  for (const SingleQuery& part : query.parts) {
    for (const ClausePtr& clause : part.clauses) {
      if (ClauseHasDdl(*clause)) return true;
    }
  }
  return false;
}

namespace {

bool ClauseReadsOnly(const Clause& clause) {
  switch (clause.kind) {
    case ClauseKind::kMatch:
    case ClauseKind::kUnwind:
    case ClauseKind::kWith:
    case ClauseKind::kReturn:
      return true;
    case ClauseKind::kCallSubquery:
      for (const ClausePtr& inner :
           static_cast<const CallSubqueryClause&>(clause).body) {
        if (!ClauseReadsOnly(*inner)) return false;
      }
      return true;
    default:
      // CREATE / SET / REMOVE / DELETE / MERGE / FOREACH / DDL. FOREACH
      // bodies hold only update clauses, so the clause itself decides.
      return false;
  }
}

}  // namespace

bool IsReadOnlyQuery(const Query& query) {
  for (const SingleQuery& part : query.parts) {
    for (const ClausePtr& clause : part.clauses) {
      if (!ClauseReadsOnly(*clause)) return false;
    }
  }
  return true;
}

}  // namespace cypher
