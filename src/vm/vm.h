#ifndef CYPHER_VM_VM_H_
#define CYPHER_VM_VM_H_

#include "ast/query.h"
#include "exec/interpreter.h"
#include "exec/options.h"
#include "graph/graph.h"
#include "value/value.h"
#include "vm/program.h"

namespace cypher {

/// Executes a lowered statement: the VM twin of ExecuteQuery.
///
/// `program` must have been compiled from `query` (CompileStatement) and
/// the query's mode must be kNormal — EXPLAIN/PROFILE are uncacheable and
/// stay on the interpreter. The statement shell is the interpreter's,
/// step for step: the same (G, T) threading through every clause, the same
/// cancel-token polling and max_rows guard between clauses, the same UNION
/// merge, end-of-statement dangling / uniqueness validation, commit hook,
/// and atomic rollback on any failure. Only the per-step execution differs:
/// kMatch steps reuse a stamped cached pattern plan, kProject steps run
/// register bytecode, kClause steps delegate to the reference executors.
///
/// `program` may be shared by concurrent sessions (the plan cache does);
/// the match-plan slots are internally locked and everything else is
/// read-only here.
Result<QueryResult> RunProgram(PropertyGraph* graph, const Program& program,
                               const Query& query, const ValueMap& params,
                               const EvalOptions& options,
                               const CommitHook& commit_hook = nullptr);

}  // namespace cypher

#endif  // CYPHER_VM_VM_H_
