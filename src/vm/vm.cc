#include "vm/vm.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/read_pin.h"
#include "eval/evaluator.h"
#include "exec/clauses.h"
#include "exec/context.h"
#include "match/compiled_pattern.h"
#include "table/table.h"
#include "vm/normalize.h"

namespace cypher {

namespace {

/// MATCH through the step's stamped plan slot.
///
/// Three regimes, chosen to make the executed plan *identical* to what the
/// interpreter would compile for the same table:
///  * 0 rows: no plan needed — introduce the new empty columns and return
///    (the interpreter's early-out).
///  * >= kTransientIndexMinRows rows: the interpreter's compile may plan a
///    transient hash index, which bakes live NodeIds — never cacheable.
///    Compile fresh with the real row count, exactly like ExecMatch.
///  * small tables (the hot parametrized-statement case): reuse the slot's
///    plan when the graph stamp still matches, else recompile. The compile
///    context carries no parameters — constant folding only ever folds
///    literal/parameter subtrees, and a failed `$#N` fold stays a lazy
///    filter evaluated with the session's real parameters at match time, so
///    the cached plan has the same anchors, orientation, and emission order
///    as the interpreter's params-in-hand compile. Hints stay at the
///    default num_rows=1: for tables below the transient-index threshold
///    the hint changes nothing else.
Status RunMatchStep(ExecContext* ctx, const MatchStepData& data,
                    Table* table) {
  const MatchClause& clause = *data.clause;
  std::vector<std::string> new_vars = MatchNewVars(clause, *table);
  EvalContext ec = ctx->Eval();
  size_t rows = table->num_rows();
  if (rows == 0) {
    Table out = Table::WithColumns(table->columns());
    for (const std::string& var : new_vars) out.AddColumn(var);
    *table = std::move(out);
    return Status::OK();
  }
  if (rows >= kTransientIndexMinRows) {
    CompiledMatch compiled = CompileMatch(ec, Bindings(table, 0),
                                          clause.patterns, {.num_rows = rows});
    return ExecMatchCompiled(ctx, clause, compiled, new_vars, table);
  }
  std::shared_ptr<const CompiledMatch> plan;
  {
    std::lock_guard<std::mutex> lock(data.mu);
    PlanStamp stamp = TakeStamp(*ec.graph);
    if (ec.read_pin != nullptr) stamp.pinned_epoch = ec.read_pin->epoch + 1;
    if (data.plan == nullptr || !(data.stamp == stamp)) {
      EvalContext compile_ec{ec.graph, nullptr, ctx->options.match_mode,
                             &ctx->options.cancel, ec.read_pin};
      data.plan = std::make_shared<const CompiledMatch>(
          CompileMatch(compile_ec, Bindings(table, 0), clause.patterns, {}));
      data.stamp = stamp;
    }
    plan = data.plan;
  }
  return ExecMatchCompiled(ctx, clause, *plan, new_vars, table);
}

/// The bytecode projection pipeline, in the interpreter's exact order:
/// items per row -> DISTINCT -> WHERE -> SKIP/LIMIT. The parallel pool is
/// row-partitioned over bindings the bytecode does not model, so a session
/// with workers falls back to the reference executor wholesale.
Status RunProjectStep(ExecContext* ctx, const Step& step, Table* table) {
  const ProjectStepData& data = *step.project;
  if (ctx->options.parallel_workers > 1) {
    return ExecClause(ctx, *step.clause, table);
  }
  EvalContext ec = ctx->Eval();
  Table out = Table::WithColumns(data.aliases);

  std::vector<std::vector<size_t>> cols;
  cols.reserve(data.items.size());
  for (const ExprProgram& item : data.items) cols.push_back(item.Bind(*table));
  std::vector<Value> regs;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(data.items.size());
    for (size_t i = 0; i < data.items.size(); ++i) {
      CYPHER_ASSIGN_OR_RETURN(Value v,
                              data.items[i].Run(ec, table, r, cols[i], &regs));
      row.push_back(std::move(v));
    }
    out.AddRow(std::move(row));
  }

  if (data.body->distinct) {
    Table deduped = Table::WithColumns(out.columns());
    std::unordered_set<std::vector<Value>, ValueVecHash, ValueVecEq> seen;
    for (size_t r = 0; r < out.num_rows(); ++r) {
      if (seen.insert(out.row(r)).second) deduped.AddRow(out.row(r));
    }
    out = std::move(deduped);
  }

  if (data.where != nullptr) {
    // The filter sees only the projected record, like Bindings(&out, r).
    std::vector<size_t> where_cols = data.where_program.Bind(out);
    Table filtered = Table::WithColumns(out.columns());
    for (size_t r = 0; r < out.num_rows(); ++r) {
      CYPHER_ASSIGN_OR_RETURN(
          Value v, data.where_program.Run(ec, &out, r, where_cols, &regs));
      CYPHER_ASSIGN_OR_RETURN(Tri pass, PredicateTri(v));
      if (pass == Tri::kTrue) filtered.AddRow(out.row(r));
    }
    out = std::move(filtered);
  }

  size_t begin = 0;
  size_t end = out.num_rows();
  if (data.body->skip != nullptr) {
    CYPHER_ASSIGN_OR_RETURN(int64_t skip,
                            EvalRowCount(ec, *data.body->skip, "SKIP"));
    begin = std::min<size_t>(static_cast<size_t>(skip), end);
  }
  if (data.body->limit != nullptr) {
    CYPHER_ASSIGN_OR_RETURN(int64_t limit,
                            EvalRowCount(ec, *data.body->limit, "LIMIT"));
    end = std::min(end, begin + static_cast<size_t>(limit));
  }
  if (begin != 0 || end != out.num_rows()) {
    Table window = Table::WithColumns(out.columns());
    for (size_t r = begin; r < end; ++r) window.AddRow(out.row(r));
    out = std::move(window);
  }

  *table = std::move(out);
  return Status::OK();
}

/// One UNION branch: the VM's RunSingleQuery. Same clause-granularity
/// cancel polls, same max_rows diagnostics, same RETURN bookkeeping.
Status RunPart(ExecContext* ctx, const Program::Part& part, Table* table,
               bool* has_return) {
  *has_return = false;
  *table = Table::Unit();
  for (const Step& step : part.steps) {
    CYPHER_RETURN_NOT_OK(ctx->options.cancel.Check());
    switch (step.kind) {
      case StepKind::kMatch:
        CYPHER_RETURN_NOT_OK(RunMatchStep(ctx, *step.match, table));
        break;
      case StepKind::kProject:
        CYPHER_RETURN_NOT_OK(RunProjectStep(ctx, step, table));
        break;
      case StepKind::kClause:
        CYPHER_RETURN_NOT_OK(ExecClause(ctx, *step.clause, table));
        break;
    }
    if (ctx->options.max_rows != 0 &&
        table->num_rows() > ctx->options.max_rows) {
      return Status::ExecutionError(
          "driving table exceeded the configured row limit (" +
          std::to_string(ctx->options.max_rows) + " records) after " +
          ClauseDisplayName(*step.clause));
    }
    if (step.clause->kind == ClauseKind::kReturn) *has_return = true;
  }
  if (!*has_return) *table = Table();
  return Status::OK();
}

}  // namespace

Result<QueryResult> RunProgram(PropertyGraph* graph, const Program& program,
                               const Query& query, const ValueMap& params,
                               const EvalOptions& options,
                               const CommitHook& commit_hook) {
  CYPHER_CHECK(!query.parts.empty());
  CYPHER_CHECK(query.mode == QueryMode::kNormal);
  CYPHER_CHECK(program.parts.size() == query.parts.size());
  if (!query.union_all.empty()) {
    bool first = query.union_all.front();
    for (bool all : query.union_all) {
      if (all != first) {
        return Status::SemanticError(
            "cannot mix UNION and UNION ALL in one statement");
      }
    }
  }

  ExecContext ctx(graph, &params, options);

  Table combined;
  bool combined_has_return = false;
  auto run_parts = [&]() -> Status {
    for (size_t p = 0; p < program.parts.size(); ++p) {
      if (options.semantics == SemanticsMode::kLegacy &&
          options.strict_cypher9_syntax) {
        CYPHER_RETURN_NOT_OK(CheckStrictCypher9Ordering(query.parts[p]));
      }
      Table table;
      bool has_return = false;
      CYPHER_RETURN_NOT_OK(
          RunPart(&ctx, program.parts[p], &table, &has_return));
      if (p == 0) {
        combined = std::move(table);
        combined_has_return = has_return;
        continue;
      }
      if (has_return != combined_has_return) {
        return Status::SemanticError(
            "all UNION branches must RETURN, or none may");
      }
      if (has_return) {
        CYPHER_ASSIGN_OR_RETURN(combined, Table::BagUnion(combined, table));
      }
    }
    if (!query.union_all.empty() && !query.union_all.front() &&
        combined_has_return) {
      combined = combined.Distinct();
    }
    return Status::OK();
  };

  // Snapshot read session: same fast path as the interpreter — the
  // statement was admitted as read-only at session level, so the whole
  // journal/validate/commit lifecycle drops away and the VM runs lock-free
  // against the pinned epoch.
  if (options.read_pin != nullptr) {
    if (!IsReadOnlyQuery(query)) {
      return Status::ExecutionError(
          "snapshot read session is read-only: update and DDL statements "
          "must run on the writer database");
    }
    ScopedReadPin scope(*options.read_pin);
    CYPHER_RETURN_NOT_OK(run_parts());
    QueryResult result;
    result.columns = combined.columns();
    result.rows = combined.rows();
    result.stats = ctx.stats;
    return result;
  }

  PropertyGraph::JournalMark mark = graph->BeginJournal();
  auto fail = [&](Status status) -> Status {
    graph->RollbackTo(mark);
    return status;
  };

  if (Status st = run_parts(); !st.ok()) return fail(st);

  if (options.semantics == SemanticsMode::kLegacy &&
      graph->HasDanglingRels()) {
    return fail(Status::ExecutionError(
        "cannot commit: deleting nodes left relationships without "
        "endpoints (delete the relationships too, or use DETACH DELETE)"));
  }

  if (Status st = graph->ValidateUniqueConstraints(); !st.ok()) {
    return fail(st);
  }

  if (commit_hook != nullptr) {
    if (Status st = commit_hook(); !st.ok()) return fail(st);
  }

  graph->CommitTo(mark);
  QueryResult result;
  result.columns = combined.columns();
  result.rows = combined.rows();
  result.stats = ctx.stats;
  return result;
}

}  // namespace cypher
