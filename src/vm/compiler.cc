#include "vm/compiler.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "ast/clause.h"
#include "ast/expr.h"

namespace cypher {

PlanStamp TakeStamp(const PropertyGraph& graph) {
  PlanStamp stamp;
  stamp.num_label_symbols = graph.num_label_symbols();
  stamp.num_type_symbols = graph.num_type_symbols();
  stamp.num_key_symbols = graph.num_key_symbols();
  stamp.index_epoch = graph.index_epoch();
  stamp.num_nodes = graph.num_nodes();
  stamp.num_rels = graph.num_rels();
  // FNV-1a over every per-label cardinality (symbols are dense), so any
  // label-count shift — the input to anchor selection and chain reversal —
  // changes the stamp even when the totals happen to cancel out.
  uint64_t h = 1469598103934665603ULL;
  for (size_t label = 0; label < stamp.num_label_symbols; ++label) {
    h ^= static_cast<uint64_t>(graph.LabelCount(static_cast<Symbol>(label)));
    h *= 1099511628211ULL;
  }
  stamp.label_counts_hash = h;
  return stamp;
}

namespace {

/// True when ExecProjection's compiled pipeline (items -> DISTINCT ->
/// WHERE -> SKIP/LIMIT) fully covers this body. Shapes that would error at
/// runtime (`RETURN` with zero items, duplicate aliases) are rejected too:
/// the kClause fallback raises the interpreter's exact diagnostics.
bool CanCompileProjection(const ProjectionBody& body, const Expr* where) {
  (void)where;  // WHERE is modeled; listed for symmetry with the rules doc
  if (body.include_existing) return false;  // `*` expands per input table
  if (body.items.empty()) return false;
  if (!body.order_by.empty()) return false;  // sort keys re-enter bindings
  std::unordered_set<std::string> seen;
  for (const ReturnItem& item : body.items) {
    if (!seen.insert(item.alias).second) return false;
    if (ContainsAggregate(*item.expr)) return false;  // implicit grouping
  }
  return true;
}

std::unique_ptr<ProjectStepData> CompileProjection(const ProjectionBody& body,
                                                   const Expr* where) {
  auto data = std::make_unique<ProjectStepData>();
  data->body = &body;
  data->where = where;
  data->aliases.reserve(body.items.size());
  data->items.reserve(body.items.size());
  for (const ReturnItem& item : body.items) {
    data->aliases.push_back(item.alias);
    data->items.push_back(ExprProgram::Compile(*item.expr));
  }
  if (where != nullptr) data->where_program = ExprProgram::Compile(*where);
  return data;
}

Step CompileClause(const Clause& clause) {
  Step step;
  step.clause = &clause;
  switch (clause.kind) {
    case ClauseKind::kMatch: {
      step.kind = StepKind::kMatch;
      step.match = std::make_unique<MatchStepData>();
      step.match->clause = &static_cast<const MatchClause&>(clause);
      return step;
    }
    case ClauseKind::kWith: {
      const auto& c = static_cast<const WithClause&>(clause);
      if (CanCompileProjection(c.body, c.where.get())) {
        step.kind = StepKind::kProject;
        step.project = CompileProjection(c.body, c.where.get());
      }
      return step;
    }
    case ClauseKind::kReturn: {
      const auto& c = static_cast<const ReturnClause&>(clause);
      if (CanCompileProjection(c.body, nullptr)) {
        step.kind = StepKind::kProject;
        step.project = CompileProjection(c.body, nullptr);
      }
      return step;
    }
    default:
      return step;  // kClause: interpreter delegation
  }
}

}  // namespace

std::unique_ptr<Program> CompileStatement(const Query& query) {
  auto program = std::make_unique<Program>();
  program->parts.reserve(query.parts.size());
  for (const SingleQuery& part : query.parts) {
    Program::Part lowered;
    lowered.steps.reserve(part.clauses.size());
    for (const ClausePtr& clause : part.clauses) {
      lowered.steps.push_back(CompileClause(*clause));
    }
    program->parts.push_back(std::move(lowered));
  }
  return program;
}

}  // namespace cypher
