#ifndef CYPHER_VM_EXPR_PROGRAM_H_
#define CYPHER_VM_EXPR_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/expr.h"
#include "ast/pattern.h"
#include "common/result.h"
#include "eval/env.h"
#include "table/table.h"
#include "value/value.h"

namespace cypher {

/// One expression lowered to flat register bytecode.
///
/// Registers are stack positions: compiling a node into register `dst`
/// compiles its children into `dst`, `dst+1`, ... and leaves the result in
/// `dst`, so the frame size is simply the maximum expression depth and no
/// separate allocator is needed. Operand application goes through the
/// shared value kernels of eval/evaluator.h — the same functions the tree
/// evaluator calls — so both tiers produce identical values and identical
/// error strings by construction.
///
/// Subtrees the bytecode does not model (comprehensions, quantifiers,
/// reduce, pattern predicates, map projections, aggregate calls) compile to
/// a kEvalTree op that defers to the tree evaluator for exactly that
/// subtree; everything around it still runs as bytecode.
///
/// Compilation happens once per cached plan; Bind() resolves column names
/// against a concrete driving table once per execution; Run() then touches
/// only integer indices per row. A program is immutable after Compile and
/// safe to share across threads; each runner passes its own register frame.
class ExprProgram {
 public:
  ExprProgram() = default;

  /// Lowers `expr`, which must outlive the program (the cached plan owns
  /// the AST). Never fails — unsupported shapes become tree fallbacks.
  static ExprProgram Compile(const Expr& expr);

  /// Resolves the referenced variable names against a table's columns.
  /// Absent columns map to Table::kNoColumn — not an error here, because a
  /// zero-row table must not raise; Run reports "undefined variable" only
  /// when a row actually reads the missing column (tree semantics).
  std::vector<size_t> Bind(const Table& table) const;

  /// Evaluates for `row` of `table` (which may be null when the program
  /// references no columns). `cols` must come from Bind on the same table;
  /// `regs` is caller-owned scratch, resized to num_regs().
  Result<Value> Run(const EvalContext& ec, const Table* table, size_t row,
                    const std::vector<size_t>& cols,
                    std::vector<Value>* regs) const;

  size_t num_regs() const { return num_regs_; }
  size_t num_ops() const { return ops_.size(); }

 private:
  enum class OpKind : uint8_t {
    kLoadConst,      // dst <- consts[imm]
    kLoadParam,      // dst <- params[names[imm]]
    kLoadColumn,     // dst <- table[row][cols[imm]]
    kLoadNull,       // dst <- null
    kProperty,       // dst <- src . names[imm]
    kHasLabels,      // dst <- src has all of name_lists[imm]
    kUnary,          // dst <- UnaryOp(aux) src
    kBinary,         // dst <- src BinaryOp(aux) src2
    kIsNull,         // dst <- src IS [NOT aux] NULL
    kMakeList,       // dst <- [src .. src+imm-1]
    kMakeMap,        // dst <- {name_lists[imm][i]: src+i}
    kIndexOp,        // dst <- src[src2]
    kCall,           // dst <- names[imm](src .. src+src2-1)
    kJumpIfNotTrue,  // if src is not (bool AND true): pc <- imm
    kJump,           // pc <- imm
    kEvalTree,       // dst <- Evaluate(trees[imm])  (tree fallback)
  };

  struct Op {
    OpKind kind;
    uint8_t aux = 0;  // UnaryOp/BinaryOp ordinal; IsNull negation flag
    uint16_t dst = 0;
    uint16_t src = 0;
    uint16_t src2 = 0;  // second operand register / argument count
    uint32_t imm = 0;   // pool index / list length / jump target
  };

  void CompileInto(const Expr& expr, uint16_t dst);
  uint32_t AddName(std::string name);
  uint32_t AddColumn(std::string name);
  void Reserve(uint16_t dst);

  std::vector<Op> ops_;
  std::vector<Value> consts_;
  std::vector<std::string> names_;    // parameter/property/function names
  std::vector<std::string> columns_;  // variable names, resolved by Bind
  std::vector<std::vector<std::string>> name_lists_;  // labels / map keys
  std::vector<const Expr*> trees_;  // tree-fallback subexpressions
  size_t num_regs_ = 0;
};

}  // namespace cypher

#endif  // CYPHER_VM_EXPR_PROGRAM_H_
