#include "vm/expr_program.h"

#include <utility>

#include "common/check.h"
#include "eval/evaluator.h"

namespace cypher {

ExprProgram ExprProgram::Compile(const Expr& expr) {
  ExprProgram program;
  program.CompileInto(expr, 0);
  return program;
}

uint32_t ExprProgram::AddName(std::string name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<uint32_t>(i);
  }
  names_.push_back(std::move(name));
  return static_cast<uint32_t>(names_.size() - 1);
}

uint32_t ExprProgram::AddColumn(std::string name) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<uint32_t>(i);
  }
  columns_.push_back(std::move(name));
  return static_cast<uint32_t>(columns_.size() - 1);
}

void ExprProgram::Reserve(uint16_t dst) {
  if (static_cast<size_t>(dst) + 1 > num_regs_) num_regs_ = dst + 1;
}

void ExprProgram::CompileInto(const Expr& expr, uint16_t dst) {
  Reserve(dst);
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      consts_.push_back(static_cast<const LiteralExpr&>(expr).value);
      ops_.push_back({OpKind::kLoadConst, 0, dst, 0, 0,
                      static_cast<uint32_t>(consts_.size() - 1)});
      return;
    }
    case ExprKind::kParameter: {
      uint32_t name = AddName(static_cast<const ParameterExpr&>(expr).name);
      ops_.push_back({OpKind::kLoadParam, 0, dst, 0, 0, name});
      return;
    }
    case ExprKind::kVariable: {
      uint32_t col = AddColumn(static_cast<const VariableExpr&>(expr).name);
      ops_.push_back({OpKind::kLoadColumn, 0, dst, 0, 0, col});
      return;
    }
    case ExprKind::kProperty: {
      const auto& e = static_cast<const PropertyExpr&>(expr);
      CompileInto(*e.object, dst);
      ops_.push_back({OpKind::kProperty, 0, dst, dst, 0, AddName(e.key)});
      return;
    }
    case ExprKind::kHasLabels: {
      const auto& e = static_cast<const HasLabelsExpr&>(expr);
      CompileInto(*e.object, dst);
      name_lists_.push_back(e.labels);
      ops_.push_back({OpKind::kHasLabels, 0, dst, dst, 0,
                      static_cast<uint32_t>(name_lists_.size() - 1)});
      return;
    }
    case ExprKind::kUnary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      CompileInto(*e.operand, dst);
      ops_.push_back(
          {OpKind::kUnary, static_cast<uint8_t>(e.op), dst, dst, 0, 0});
      return;
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      CompileInto(*e.left, dst);
      CompileInto(*e.right, static_cast<uint16_t>(dst + 1));
      ops_.push_back({OpKind::kBinary, static_cast<uint8_t>(e.op), dst, dst,
                      static_cast<uint16_t>(dst + 1), 0});
      return;
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      CompileInto(*e.operand, dst);
      ops_.push_back({OpKind::kIsNull, static_cast<uint8_t>(e.negated), dst,
                      dst, 0, 0});
      return;
    }
    case ExprKind::kList: {
      const auto& e = static_cast<const ListExpr&>(expr);
      for (size_t i = 0; i < e.items.size(); ++i) {
        CompileInto(*e.items[i], static_cast<uint16_t>(dst + i));
      }
      ops_.push_back({OpKind::kMakeList, 0, dst, dst, 0,
                      static_cast<uint32_t>(e.items.size())});
      return;
    }
    case ExprKind::kMap: {
      const auto& e = static_cast<const MapExpr&>(expr);
      std::vector<std::string> keys;
      keys.reserve(e.entries.size());
      for (size_t i = 0; i < e.entries.size(); ++i) {
        keys.push_back(e.entries[i].first);
        CompileInto(*e.entries[i].second, static_cast<uint16_t>(dst + i));
      }
      name_lists_.push_back(std::move(keys));
      ops_.push_back({OpKind::kMakeMap, 0, dst, dst, 0,
                      static_cast<uint32_t>(name_lists_.size() - 1)});
      return;
    }
    case ExprKind::kIndex: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      CompileInto(*e.object, dst);
      CompileInto(*e.index, static_cast<uint16_t>(dst + 1));
      ops_.push_back({OpKind::kIndexOp, 0, dst, dst,
                      static_cast<uint16_t>(dst + 1), 0});
      return;
    }
    case ExprKind::kFunction: {
      const auto& e = static_cast<const FunctionExpr&>(expr);
      // Aggregates need an AggregateScope the bytecode contexts never have;
      // route them through the tree so its "not allowed here" error fires.
      if (IsAggregateFunctionName(e.name)) break;
      for (size_t i = 0; i < e.args.size(); ++i) {
        CompileInto(*e.args[i], static_cast<uint16_t>(dst + i));
      }
      ops_.push_back({OpKind::kCall, 0, dst, dst,
                      static_cast<uint16_t>(e.args.size()), AddName(e.name)});
      return;
    }
    case ExprKind::kCase: {
      // Lazy branch selection, exactly like the tree: a condition that is
      // not (boolean AND true) falls through to the next WHEN. Every branch
      // value lands in `dst`, so no joins are needed.
      const auto& e = static_cast<const CaseExpr&>(expr);
      std::vector<size_t> jumps_to_end;
      for (const auto& [cond, value] : e.whens) {
        CompileInto(*cond, dst);
        size_t skip = ops_.size();
        ops_.push_back({OpKind::kJumpIfNotTrue, 0, 0, dst, 0, 0});
        CompileInto(*value, dst);
        jumps_to_end.push_back(ops_.size());
        ops_.push_back({OpKind::kJump, 0, 0, 0, 0, 0});
        ops_[skip].imm = static_cast<uint32_t>(ops_.size());
      }
      if (e.otherwise != nullptr) {
        CompileInto(*e.otherwise, dst);
      } else {
        ops_.push_back({OpKind::kLoadNull, 0, dst, 0, 0, 0});
      }
      for (size_t j : jumps_to_end) {
        ops_[j].imm = static_cast<uint32_t>(ops_.size());
      }
      return;
    }
    case ExprKind::kCountStar:
    case ExprKind::kListComprehension:
    case ExprKind::kQuantifier:
    case ExprKind::kReduce:
    case ExprKind::kPatternPredicate:
    case ExprKind::kMapProjection:
      break;  // tree fallback below
  }
  trees_.push_back(&expr);
  ops_.push_back({OpKind::kEvalTree, 0, dst, 0, 0,
                  static_cast<uint32_t>(trees_.size() - 1)});
}

std::vector<size_t> ExprProgram::Bind(const Table& table) const {
  std::vector<size_t> cols;
  cols.reserve(columns_.size());
  for (const std::string& name : columns_) {
    cols.push_back(table.ColumnIndex(name));
  }
  return cols;
}

Result<Value> ExprProgram::Run(const EvalContext& ec, const Table* table,
                               size_t row, const std::vector<size_t>& cols,
                               std::vector<Value>* regs) const {
  if (regs->size() < num_regs_) regs->resize(num_regs_);
  std::vector<Value>& r = *regs;
  for (size_t pc = 0; pc < ops_.size(); ++pc) {
    const Op& op = ops_[pc];
    switch (op.kind) {
      case OpKind::kLoadConst:
        r[op.dst] = consts_[op.imm];
        break;
      case OpKind::kLoadParam: {
        const std::string& name = names_[op.imm];
        if (ec.params != nullptr) {
          auto it = ec.params->find(name);
          if (it != ec.params->end()) {
            r[op.dst] = it->second;
            break;
          }
        }
        return Status::ExecutionError("missing parameter: $" + name);
      }
      case OpKind::kLoadColumn: {
        size_t col = cols[op.imm];
        if (col == Table::kNoColumn) {
          return Status::SemanticError("undefined variable: " +
                                       columns_[op.imm]);
        }
        r[op.dst] = table->At(row, col);
        break;
      }
      case OpKind::kLoadNull:
        r[op.dst] = Value::Null();
        break;
      case OpKind::kProperty: {
        CYPHER_ASSIGN_OR_RETURN(
            r[op.dst], EvalPropertyValue(ec, r[op.src], names_[op.imm]));
        break;
      }
      case OpKind::kHasLabels: {
        CYPHER_ASSIGN_OR_RETURN(
            r[op.dst],
            EvalHasLabelsValue(ec, r[op.src], name_lists_[op.imm]));
        break;
      }
      case OpKind::kUnary: {
        CYPHER_ASSIGN_OR_RETURN(
            r[op.dst],
            EvalUnaryValue(static_cast<UnaryOp>(op.aux), r[op.src]));
        break;
      }
      case OpKind::kBinary: {
        CYPHER_ASSIGN_OR_RETURN(
            r[op.dst], EvalBinaryValues(static_cast<BinaryOp>(op.aux),
                                        r[op.src], r[op.src2]));
        break;
      }
      case OpKind::kIsNull: {
        bool is_null = r[op.src].is_null();
        r[op.dst] = Value::Bool(op.aux != 0 ? !is_null : is_null);
        break;
      }
      case OpKind::kMakeList: {
        ValueList items;
        items.reserve(op.imm);
        for (uint32_t i = 0; i < op.imm; ++i) {
          items.push_back(std::move(r[op.src + i]));
        }
        r[op.dst] = Value::List(std::move(items));
        break;
      }
      case OpKind::kMakeMap: {
        const std::vector<std::string>& keys = name_lists_[op.imm];
        ValueMap entries;
        for (size_t i = 0; i < keys.size(); ++i) {
          entries[keys[i]] = std::move(r[op.src + i]);
        }
        r[op.dst] = Value::Map(std::move(entries));
        break;
      }
      case OpKind::kIndexOp: {
        CYPHER_ASSIGN_OR_RETURN(r[op.dst],
                                EvalIndexValue(r[op.src], r[op.src2]));
        break;
      }
      case OpKind::kCall: {
        std::vector<Value> args;
        args.reserve(op.src2);
        for (uint16_t i = 0; i < op.src2; ++i) {
          args.push_back(std::move(r[op.src + i]));
        }
        CYPHER_ASSIGN_OR_RETURN(
            r[op.dst], EvalScalarFunction(ec, names_[op.imm], std::move(args)));
        break;
      }
      case OpKind::kJumpIfNotTrue: {
        const Value& c = r[op.src];
        if (!(c.is_bool() && c.AsBool())) pc = op.imm - 1;
        break;
      }
      case OpKind::kJump: {
        pc = op.imm - 1;
        break;
      }
      case OpKind::kEvalTree: {
        Bindings bindings =
            table != nullptr ? Bindings(table, row) : Bindings();
        CYPHER_ASSIGN_OR_RETURN(
            r[op.dst], Evaluate(ec, bindings, *trees_[op.imm], nullptr));
        break;
      }
    }
  }
  CYPHER_CHECK(!r.empty());
  return std::move(r[0]);
}

}  // namespace cypher
