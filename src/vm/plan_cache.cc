#include "vm/plan_cache.h"

#include <functional>

namespace cypher {

PlanCache::PlanCache(size_t capacity)
    : per_shard_capacity_(capacity / kNumShards > 0 ? capacity / kNumShards
                                                    : 1) {}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

const PlanCache::Shard& PlanCache::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

void PlanCache::Touch(Shard& shard, Entry& entry, const std::string& key) {
  shard.order.erase(entry.lru);
  shard.order.push_front(key);
  entry.lru = shard.order.begin();
}

std::optional<
    std::pair<std::shared_ptr<const CachedPlan>, std::vector<Value>>>
PlanCache::LookupRaw(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  Touch(shard, it->second, key);
  auto result = std::make_pair(it->second.plan, it->second.literals);
  lock.unlock();
  hits_.fetch_add(1, std::memory_order_relaxed);
  raw_hits_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::shared_ptr<const CachedPlan> PlanCache::LookupShape(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    lock.unlock();
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Touch(shard, it->second, key);
  std::shared_ptr<const CachedPlan> plan = it->second.plan;
  lock.unlock();
  hits_.fetch_add(1, std::memory_order_relaxed);
  shape_hits_.fetch_add(1, std::memory_order_relaxed);
  return plan;
}

bool PlanCache::PeekShape(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.count(key) > 0;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> plan,
                       std::vector<Value> literals) {
  Shard& shard = ShardFor(key);
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Racing compile of the same statement: keep the resident plan (its
      // match-plan slots may already be warm) and just refresh recency.
      Touch(shard, it->second, key);
      return;
    }
    shard.order.push_front(key);
    Entry entry;
    entry.plan = std::move(plan);
    entry.literals = std::move(literals);
    entry.lru = shard.order.begin();
    shard.map.emplace(key, std::move(entry));
    while (shard.map.size() > per_shard_capacity_) {
      shard.map.erase(shard.order.back());
      shard.order.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

void PlanCache::InsertRaw(const std::string& key,
                          std::shared_ptr<const CachedPlan> plan,
                          std::vector<Value> literals) {
  Insert(key, std::move(plan), std::move(literals));
}

void PlanCache::InsertShape(const std::string& key,
                            std::shared_ptr<const CachedPlan> plan) {
  Insert(key, std::move(plan), {});
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.order.clear();
  }
}

PlanCacheStats PlanCache::Stats() const {
  PlanCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.raw_hits = raw_hits_.load(std::memory_order_relaxed);
  stats.shape_hits = shape_hits_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.map.size();
  }
  return stats;
}

void PlanCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  raw_hits_.store(0, std::memory_order_relaxed);
  shape_hits_.store(0, std::memory_order_relaxed);
}

}  // namespace cypher
