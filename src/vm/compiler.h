#ifndef CYPHER_VM_COMPILER_H_
#define CYPHER_VM_COMPILER_H_

#include <memory>

#include "ast/query.h"
#include "vm/program.h"

namespace cypher {

/// Lowers a checked statement into a Program for the dispatch-loop VM.
/// Never fails: every clause lowers to *something* — a bytecode projection
/// step, a cached-plan match step, or an interpreter-delegation step — so
/// the statement always runs, and runs identically to the interpreter.
/// The Query must outlive the Program (CachedPlan keeps them together).
///
/// Per-clause lowering rules (the interpreter-fallback rule of DESIGN.md):
///  * MATCH / OPTIONAL MATCH -> kMatch: pattern enumeration through a
///    stamped, shareable match-plan slot.
///  * WITH / RETURN -> kProject when the pipeline is fully modeled: no `*`,
///    at least one item, unique aliases, no aggregates anywhere, no
///    ORDER BY. DISTINCT, WHERE, SKIP and LIMIT are modeled.
///  * Everything else (updates, UNWIND, FOREACH, CALL, DDL, aggregating or
///    sorting projections) -> kClause, the reference executor.
std::unique_ptr<Program> CompileStatement(const Query& query);

}  // namespace cypher

#endif  // CYPHER_VM_COMPILER_H_
