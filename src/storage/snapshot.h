#ifndef CYPHER_STORAGE_SNAPSHOT_H_
#define CYPHER_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "graph/graph.h"

namespace cypher::storage {

/// Exact-slot snapshot of a graph, the payload of a WAL kSnapshot record.
///
/// Unlike DumpGraph (which compacts ids, producing an isomorphic but not
/// identical graph), this encoding preserves slot numbering *including
/// tombstones*, because statement records appended after the snapshot
/// reference entities by original slot id. Line-oriented text:
///
///   nodes <slot-capacity>
///   rels <slot-capacity>
///   node <slot>[:Label...] {key: literal, ...}      alive nodes only
///   rel <slot> <src> <tgt> :TYPE {key: literal, ...} alive rels only
///   index :Label key
///   uniq :Label key
///
/// Dead slots are implicit (the gaps); the decoder re-creates them as
/// tombstones. Adjacency, the label index and cardinalities are rebuilt;
/// property indexes and uniqueness constraints are re-declared by name.
std::string EncodeSnapshot(const PropertyGraph& graph);

/// Rebuilds a graph from EncodeSnapshot output. The result has the exact
/// slot layout of the source; interner order may differ (compare with
/// DumpGraphCanonical, not DumpGraph).
Result<PropertyGraph> DecodeSnapshot(std::string_view payload);

/// Replays one committed statement's redo text (PropertyGraph::TakeRedoLog,
/// the payload of a kStatement record) onto `graph`, which must be in the
/// exact-slot state the statement was captured against.
Status ApplyRedoLog(PropertyGraph* graph, std::string_view redo);

struct RecoveredGraph {
  PropertyGraph graph;
  /// Statement records applied (after the latest snapshot).
  size_t statements = 0;
  /// Valid prefix length of the log; bytes past this are torn/corrupt.
  uint64_t valid_bytes = 0;
  bool torn_tail = false;
};

/// Crash recovery over a raw log image: decode records (stopping at the
/// first torn or corrupt one), restore the latest snapshot, then replay
/// every following statement. The caller truncates the file to
/// `valid_bytes` before appending new records.
Result<RecoveredGraph> RecoverGraph(std::string_view wal_bytes);

}  // namespace cypher::storage

#endif  // CYPHER_STORAGE_SNAPSHOT_H_
