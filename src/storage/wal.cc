#include "storage/wal.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"

namespace cypher::storage {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char bytes[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                   static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(bytes, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

std::string EncodeWalRecord(WalRecordType type, std::string_view payload) {
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  std::string out;
  out.reserve(8 + body.size());
  PutU32(&out, static_cast<uint32_t>(body.size()));
  PutU32(&out, Crc32(body.data(), body.size()));
  out += body;
  return out;
}

size_t WalFrameSize(std::string_view bytes) {
  if (bytes.size() < 8) return 0;
  uint32_t len = GetU32(bytes.data());
  if (len == 0 || bytes.size() - 8 < len) return 0;
  return 8 + len;
}

Result<std::vector<WalRecord>> DecodeWalSegment(std::string_view bytes) {
  std::vector<WalRecord> records;
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t frame = WalFrameSize(bytes.substr(pos));
    if (frame == 0) {
      return Status::InvalidArgument("torn record in replication segment");
    }
    uint32_t crc = GetU32(bytes.data() + pos + 4);
    const char* body = bytes.data() + pos + 8;
    size_t len = frame - 8;
    if (Crc32(body, len) != crc) {
      return Status::InvalidArgument("corrupt record in replication segment");
    }
    auto type = static_cast<WalRecordType>(static_cast<unsigned char>(*body));
    if (type != WalRecordType::kSnapshot &&
        type != WalRecordType::kStatement) {
      return Status::InvalidArgument(
          "unknown record type in replication segment");
    }
    records.push_back({type, std::string(body + 1, len - 1)});
    pos += frame;
  }
  return records;
}

Result<WalContents> DecodeWal(std::string_view bytes) {
  if (bytes.size() < kWalMagicSize ||
      std::memcmp(bytes.data(), kWalMagic, kWalMagicSize) != 0) {
    return Status::InvalidArgument(
        "not a write-ahead log (bad or short magic)");
  }
  WalContents out;
  size_t pos = kWalMagicSize;
  out.valid_bytes = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) break;  // torn header
    uint32_t len = GetU32(bytes.data() + pos);
    uint32_t crc = GetU32(bytes.data() + pos + 4);
    if (len == 0 || bytes.size() - pos - 8 < len) break;  // torn body
    const char* body = bytes.data() + pos + 8;
    if (Crc32(body, len) != crc) break;  // corrupt record
    auto type = static_cast<WalRecordType>(static_cast<unsigned char>(*body));
    if (type != WalRecordType::kSnapshot &&
        type != WalRecordType::kStatement) {
      break;  // future/garbage type: stop, do not guess
    }
    out.records.push_back({type, std::string(body + 1, len - 1)});
    pos += 8 + len;
    out.valid_bytes = pos;
  }
  out.torn_tail = out.valid_bytes < bytes.size();
  return out;
}

WalWriter::WalWriter(std::unique_ptr<LogFile> file)
    : file_(std::move(file)),
      appended_lsn_(file_->size()),
      durable_lsn_(file_->size()) {}

Result<uint64_t> WalWriter::Append(WalRecordType type,
                                   std::string_view payload) {
  std::string frame = EncodeWalRecord(type, payload);
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_.ok()) return error_;
  pending_ += frame;
  appended_lsn_ += frame.size();
  return appended_lsn_;
}

Status WalWriter::Sync(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!error_.ok()) return error_;
    if (durable_lsn_ >= lsn) return Status::OK();
    if (leader_active_) {
      cv_.wait(lock);
      continue;
    }
    // Become the leader: flush everything buffered so far, which covers
    // this caller and every follower that appended before this point.
    leader_active_ = true;
    std::string batch;
    batch.swap(pending_);
    uint64_t target = appended_lsn_;
    uint64_t durable = durable_lsn_ - base_offset_;  // as a file offset
    lock.unlock();
    Status st = batch.empty() ? Status::OK()
                              : file_->Append(batch.data(), batch.size());
    if (st.ok()) st = file_->Sync();
    if (!st.ok()) {
      // Un-acknowledged bytes must not survive: a fully-written record
      // whose fsync failed would otherwise replay on recovery a statement
      // the caller was told had failed. Best effort — if the dying disk
      // refuses even the truncate, recovery's checksum scan still drops
      // torn bytes (only a whole record followed by a failed fsync can
      // then resurrect, the unavoidable "commit status unknown" case).
      (void)file_->Truncate(durable);
    }
    lock.lock();
    leader_active_ = false;
    if (st.ok()) {
      durable_lsn_ = target;
    } else {
      error_ = st;  // poisoned: nothing past durable_lsn_ is trusted
    }
    cv_.notify_all();
  }
}

Status WalWriter::Rewrite(WalRecordType type, std::string_view payload) {
  std::string contents(kWalMagic, kWalMagicSize);
  contents += EncodeWalRecord(type, payload);
  std::unique_lock<std::mutex> lock(mu_);
  while (leader_active_) cv_.wait(lock);
  if (!error_.ok()) return error_;
  // Retention check BEFORE anything is mutated: a pin below the
  // post-compaction end means some reader still needs old bytes the
  // rewrite would drop. Refuse without poisoning — the log just keeps
  // growing until the pinned cursor catches up or detaches.
  for (const auto& [id, pinned_lsn] : pins_) {
    if (pinned_lsn < appended_lsn_) {
      return Status::InvalidArgument(
          "rewrite refused: retention pin at lsn " +
          std::to_string(pinned_lsn) + " still needs bytes before lsn " +
          std::to_string(appended_lsn_));
    }
  }
  // Take the leader role so no concurrent Sync touches the file while it
  // is being replaced. Buffered records are dropped — the payload subsumes
  // them (see header contract) — so the virtual end LSN simply becomes
  // fully durable.
  leader_active_ = true;
  pending_.clear();
  // If the compacted image outgrows every LSN handed out so far (a graph
  // whose snapshot is larger than its whole statement history), advance the
  // virtual clock so the new base offset stays non-negative.
  if (appended_lsn_ < contents.size()) appended_lsn_ = contents.size();
  uint64_t target = appended_lsn_;
  lock.unlock();
  Status st = file_->Replace(contents.data(), contents.size());
  lock.lock();
  leader_active_ = false;
  if (st.ok()) {
    durable_lsn_ = target;
    base_offset_ = target - contents.size();
    // Everything before the rewrite point was folded into one snapshot
    // record, so no LSN below `target` is a record boundary any more.
    min_resume_lsn_ = target;
  } else {
    error_ = st;  // the file may hold either old or new contents; recovery
                  // decodes whichever survived
  }
  cv_.notify_all();
  return st;
}

uint64_t WalWriter::RegisterRetentionPin(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_pin_id_++;
  pins_[id] = lsn;
  return id;
}

void WalWriter::AdvanceRetentionPin(uint64_t pin_id, uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(pin_id);
  if (it != pins_.end() && lsn > it->second) it->second = lsn;
}

void WalWriter::ReleaseRetentionPin(uint64_t pin_id) {
  std::lock_guard<std::mutex> lock(mu_);
  pins_.erase(pin_id);
}

uint64_t WalWriter::MinRetentionPin() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min = UINT64_MAX;
  for (const auto& [id, lsn] : pins_) min = std::min(min, lsn);
  return min;
}

Result<std::string> WalWriter::ReadDurableFrom(uint64_t from_lsn,
                                               uint64_t* end_lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  // Wait out an in-flight group-commit leader (or rewrite): it appends to
  // the file without holding mu_, and the read must not race that. Once
  // leader_active_ is false and we hold mu_, nobody touches the file.
  while (leader_active_) cv_.wait(lock);
  if (from_lsn < base_offset_ + kWalMagicSize) {
    return Status::InvalidArgument(
        "durable read below the compaction base: lsn " +
        std::to_string(from_lsn) + " < " +
        std::to_string(base_offset_ + kWalMagicSize));
  }
  if (from_lsn >= durable_lsn_) {
    // A cursor at (or ahead of — appended but unsynced records) the durable
    // end: nothing to read yet.
    *end_lsn = from_lsn;
    return std::string();
  }
  *end_lsn = durable_lsn_;
  CYPHER_ASSIGN_OR_RETURN(std::string bytes, file_->ReadAll());
  uint64_t begin = from_lsn - base_offset_;
  uint64_t end = durable_lsn_ - base_offset_;
  if (end > bytes.size()) {
    return Status::InternalError("durable prefix exceeds log file size");
  }
  return bytes.substr(begin, end - begin);
}

uint64_t WalWriter::LogBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_lsn_ - base_offset_;
}

uint64_t WalWriter::base_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_offset_ + kWalMagicSize;
}

uint64_t WalWriter::min_resume_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_resume_lsn_;
}

Status WalWriter::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

uint64_t WalWriter::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

uint64_t WalWriter::appended_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_lsn_;
}

}  // namespace cypher::storage
