#ifndef CYPHER_STORAGE_LOG_FILE_H_
#define CYPHER_STORAGE_LOG_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"

namespace cypher::storage {

/// Pluggable append-only I/O surface under the write-ahead log.
///
/// Three implementations: PosixLogFile (a real file, fsync-backed),
/// MemoryLogFile (a byte buffer, for tests and benches that should not touch
/// disk), and FaultyLogFile (a fault-injecting wrapper that fails, tears or
/// drops writes at a chosen point, driving the crash-recovery harness).
///
/// All failures use StatusCode::kAborted so the database layer can treat
/// any log I/O error as "this commit is off" uniformly. Implementations are
/// not thread-safe; WalWriter serializes access.
class LogFile {
 public:
  virtual ~LogFile() = default;

  /// Appends `size` bytes at the end. A failed append may leave a prefix of
  /// the bytes behind (a torn write) — recovery's checksum scan handles it.
  virtual Status Append(const void* data, size_t size) = 0;

  /// Makes everything appended so far survive a crash.
  virtual Status Sync() = 0;

  /// Drops everything past `new_size` (recovery truncates torn tails).
  virtual Status Truncate(uint64_t new_size) = 0;

  /// Replaces the whole contents with `size` bytes and makes the result
  /// durable (log compaction, see WalWriter::Rewrite). The default is
  /// truncate + append + sync — correct but not crash-atomic; PosixLogFile
  /// overrides it with write-to-temp + rename so a crash mid-compaction
  /// leaves either the old log or the new one, never a hybrid.
  virtual Status Replace(const void* data, size_t size) {
    Status st = Truncate(0);
    if (st.ok()) st = Append(data, size);
    if (st.ok()) st = Sync();
    return st;
  }

  /// The full current contents (recovery reads the log once at open).
  virtual Result<std::string> ReadAll() = 0;

  virtual uint64_t size() const = 0;
};

/// Opens (creating if absent) an append-only file at `path`. Sync runs
/// fsync(2); durability is as real as the filesystem makes it.
Result<std::unique_ptr<LogFile>> OpenPosixLogFile(const std::string& path);

/// An in-memory log: "durable" means "still in the buffer". The crash tests
/// snapshot `bytes()` to simulate what a real disk would hold.
class MemoryLogFile : public LogFile {
 public:
  Status Append(const void* data, size_t size) override {
    bytes_.append(static_cast<const char*>(data), size);
    return Status::OK();
  }
  Status Sync() override {
    synced_size_ = bytes_.size();
    return Status::OK();
  }
  Status Truncate(uint64_t new_size) override {
    if (new_size < bytes_.size()) bytes_.resize(new_size);
    if (synced_size_ > bytes_.size()) synced_size_ = bytes_.size();
    return Status::OK();
  }
  Result<std::string> ReadAll() override { return bytes_; }
  uint64_t size() const override { return bytes_.size(); }

  const std::string& bytes() const { return bytes_; }
  /// Bytes covered by the last Sync — what a crash right now would keep if
  /// the OS dropped every unflushed page (the harshest legal outcome).
  uint64_t synced_size() const { return synced_size_; }

 private:
  std::string bytes_;
  uint64_t synced_size_ = 0;
};

/// Fault-injection wrapper: passes calls through to `base` until a
/// configured trip point, then fails every call (a dying disk stays dead).
/// The crossing Append can optionally tear — write a prefix of its bytes
/// before failing — which is exactly the half-written-record case the
/// torn-write rule must make invisible.
class FaultyLogFile : public LogFile {
 public:
  explicit FaultyLogFile(std::unique_ptr<LogFile> base)
      : base_(std::move(base)) {}

  /// Trips once `budget` total bytes have been appended. When `torn`, the
  /// append that crosses the budget writes the remaining budget first.
  void FailAfterBytes(uint64_t budget, bool torn) {
    byte_budget_ = budget;
    torn_ = torn;
    has_byte_budget_ = true;
  }

  /// Trips on the `calls`-th Append/Sync call (1-based) and every later one.
  void FailAfterCalls(uint64_t calls) {
    call_budget_ = calls;
    has_call_budget_ = true;
  }

  bool tripped() const { return tripped_; }

  /// The wrapped log (tests inspect what survived the "crash").
  LogFile* base() { return base_.get(); }

  Status Append(const void* data, size_t size) override {
    if (CountCall()) return Trip();
    if (has_byte_budget_ && appended_ + size > byte_budget_) {
      uint64_t room = byte_budget_ - appended_;
      if (torn_ && room > 0) {
        Status st = base_->Append(data, room);
        if (!st.ok()) return st;
      }
      appended_ = byte_budget_;
      return Trip();
    }
    appended_ += size;
    return base_->Append(data, size);
  }

  Status Sync() override {
    if (CountCall()) return Trip();
    return base_->Sync();
  }

  Status Truncate(uint64_t new_size) override {
    return base_->Truncate(new_size);
  }

  Result<std::string> ReadAll() override { return base_->ReadAll(); }

  uint64_t size() const override { return base_->size(); }

 private:
  /// Counts one Append/Sync; true when the call budget (or an earlier trip)
  /// says this call must fail.
  bool CountCall() {
    ++calls_;
    if (has_call_budget_ && calls_ >= call_budget_) tripped_ = true;
    return tripped_;
  }

  Status Trip() {
    tripped_ = true;
    return Status::Aborted("injected log I/O fault");
  }

  std::unique_ptr<LogFile> base_;
  uint64_t byte_budget_ = 0;
  uint64_t call_budget_ = 0;
  uint64_t appended_ = 0;
  uint64_t calls_ = 0;
  bool has_byte_budget_ = false;
  bool has_call_budget_ = false;
  bool torn_ = false;
  bool tripped_ = false;
};

}  // namespace cypher::storage

#endif  // CYPHER_STORAGE_LOG_FILE_H_
