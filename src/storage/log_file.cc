#include "storage/log_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cypher::storage {

namespace {

Status IoError(const std::string& what) {
  return Status::Aborted("log file: " + what + ": " + std::strerror(errno));
}

/// fsync-backed append-only file. The descriptor is opened O_APPEND so a
/// crashed writer can never scribble into the committed prefix.
class PosixLogFile : public LogFile {
 public:
  PosixLogFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  ~PosixLogFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t size) override {
    const char* p = static_cast<const char*>(data);
    size_t left = size;
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return IoError("write");
      }
      p += n;
      left -= static_cast<size_t>(n);
      size_ += static_cast<uint64_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return IoError("fsync");
    return Status::OK();
  }

  Status Truncate(uint64_t new_size) override {
    if (new_size >= size_) return Status::OK();
    if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
      return IoError("ftruncate");
    }
    size_ = new_size;
    // O_APPEND writes always go to the (new) end; no lseek needed.
    return Status::OK();
  }

  Result<std::string> ReadAll() override {
    std::string out;
    out.resize(size_);
    size_t done = 0;
    while (done < out.size()) {
      ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                          static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return IoError("pread");
      }
      if (n == 0) break;  // shorter than expected: trust what is there
      done += static_cast<size_t>(n);
    }
    out.resize(done);
    return out;
  }

  /// Crash-atomic whole-file replacement: write a sibling temp file, fsync
  /// it, rename over the log, then reopen in append mode. rename(2) is
  /// atomic on POSIX filesystems, so a crash anywhere in here leaves either
  /// the complete old log or the complete new one.
  Status Replace(const void* data, size_t size) override {
    std::string tmp = path_ + ".compact";
    int tfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (tfd < 0) return IoError("open " + tmp);
    const char* p = static_cast<const char*>(data);
    size_t left = size;
    while (left > 0) {
      ssize_t n = ::write(tfd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(tfd);
        return IoError("write " + tmp);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    if (::fsync(tfd) != 0) {
      ::close(tfd);
      return IoError("fsync " + tmp);
    }
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      ::close(tfd);
      return IoError("rename " + tmp);
    }
    // tfd still names the (renamed) file but was opened without O_APPEND;
    // swap in a fresh append-mode descriptor.
    ::close(tfd);
    int fd = ::open(path_.c_str(), O_RDWR | O_APPEND);
    if (fd < 0) return IoError("reopen " + path_);
    ::close(fd_);
    fd_ = fd;
    size_ = size;
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  uint64_t size_;
  std::string path_;
};

}  // namespace

Result<std::unique_ptr<LogFile>> OpenPosixLogFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return IoError("open " + path);
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return IoError("lseek " + path);
  }
  return std::unique_ptr<LogFile>(
      new PosixLogFile(fd, static_cast<uint64_t>(end), path));
}

}  // namespace cypher::storage
