#ifndef CYPHER_STORAGE_WAL_H_
#define CYPHER_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/log_file.h"

namespace cypher::storage {

/// Logical write-ahead log, one file:
///
///   [8-byte magic "CYWAL001"]
///   [u32 length][u32 crc32][u8 type][payload...]     repeated
///
/// Integers are little-endian; `length` counts the type byte plus the
/// payload, and the CRC covers the same bytes. A kSnapshot payload is an
/// exact-slot graph image (see snapshot.h); a kStatement payload is one
/// committed statement's redo text (PropertyGraph::TakeRedoLog). Recovery
/// replays the latest snapshot, then every following statement, and stops
/// at the first incomplete or checksum-failing record — the torn-write
/// rule that keeps a half-written commit invisible.
inline constexpr char kWalMagic[8] = {'C', 'Y', 'W', 'A', 'L', '0', '0', '1'};
inline constexpr size_t kWalMagicSize = sizeof(kWalMagic);
inline constexpr size_t kWalFrameHeaderSize = 9;  // len + crc + type

enum class WalRecordType : uint8_t {
  kSnapshot = 1,
  kStatement = 2,
};

struct WalRecord {
  WalRecordType type;
  std::string payload;
};

/// Frames one record (header + checksummed body) for appending.
std::string EncodeWalRecord(WalRecordType type, std::string_view payload);

struct WalContents {
  std::vector<WalRecord> records;
  /// Length of the valid prefix: magic plus every whole, checksum-clean
  /// record. Recovery truncates the file to this.
  uint64_t valid_bytes = 0;
  /// True when trailing bytes past valid_bytes were dropped (torn record,
  /// bad checksum, or unknown record type).
  bool torn_tail = false;
};

/// Decodes a log image. Fails (InvalidArgument) only when the magic itself
/// is wrong or short — anything after a good magic degrades to a torn tail,
/// never an error, because that is exactly what a crash leaves behind.
Result<WalContents> DecodeWal(std::string_view bytes);

/// Size (header + body) of the complete frame at the front of `bytes`, or 0
/// when no whole frame is there. Does not verify the checksum — this is the
/// record-boundary walker the replication shipper cuts segments with.
size_t WalFrameSize(std::string_view bytes);

/// Decodes a run of frames with no leading magic — a replication segment.
/// Unlike DecodeWal, a torn or checksum-failing byte here is an ERROR, not a
/// tail to drop: a shipped segment is whole by construction, so damage means
/// the transport corrupted it and the follower must re-fetch, never apply.
Result<std::vector<WalRecord>> DecodeWalSegment(std::string_view bytes);

/// Serializes appends and batches fsyncs (group commit).
///
/// Append buffers a framed record in memory and returns its LSN — the byte
/// offset just past the record. Sync(lsn) blocks until the log is durable
/// through that offset: the first waiter becomes the leader, writes and
/// fsyncs everything buffered so far (covering every concurrent follower),
/// and followers just wait. Under concurrent sessions this collapses N
/// commits into one fsync.
///
/// Any I/O failure is sticky: the writer poisons itself and every later
/// Append/Sync returns the same kAborted status. The bytes of the failed
/// batch may sit torn at the end of the file; recovery truncates them.
class WalWriter {
 public:
  /// Takes over a log whose on-disk prefix (`file->size()` bytes) is valid.
  explicit WalWriter(std::unique_ptr<LogFile> file);

  /// Frames and buffers one record; returns its LSN to pass to Sync.
  Result<uint64_t> Append(WalRecordType type, std::string_view payload);

  /// Blocks until the log is durable through `lsn` (see class comment).
  Status Sync(uint64_t lsn);

  /// Log compaction: durably replaces the whole file with [magic, one
  /// `type` record carrying `payload`] — in practice a fresh kSnapshot.
  /// Buffered-but-unsynced records are DROPPED, so the caller must
  /// guarantee the payload captures every appended record's effects; the
  /// database layer calls this under its execution lock with a snapshot it
  /// encodes right there, which covers exactly the records in flight. LSNs
  /// are virtual and monotone across compactions (the file offset of an
  /// LSN is `lsn - base`): every outstanding Sync(lsn) target becomes
  /// durable the moment the rewrite lands, because the snapshot subsumes
  /// it. Waits out an in-flight group-commit leader; a failure is sticky
  /// like any other log I/O error.
  ///
  /// Refused (InvalidArgument, NOT sticky) while any retention pin sits
  /// below the post-compaction end: the pinned reader still needs bytes the
  /// rewrite would drop, so the log keeps growing until the pin catches up
  /// or is released. The database's auto-checkpoint treats the refusal as
  /// "retry after the next commit".
  Status Rewrite(WalRecordType type, std::string_view payload);

  // ---- Retention pins -------------------------------------------------------
  // A pin marks "some reader (a replication follower's shipper cursor)
  // still needs every durable byte from `lsn` on". Rewrite refuses to
  // compact past a pin; everything else is unaffected. Pins only advance.

  /// Registers a pin at `lsn`; returns an id for Advance/Release.
  uint64_t RegisterRetentionPin(uint64_t lsn);

  /// Moves a pin forward (backward moves are ignored — retention only
  /// ever shrinks).
  void AdvanceRetentionPin(uint64_t pin_id, uint64_t lsn);

  void ReleaseRetentionPin(uint64_t pin_id);

  /// The smallest pinned LSN, or UINT64_MAX when no pin is registered.
  uint64_t MinRetentionPin() const;

  /// Reads the durable byte range [from_lsn, durable_lsn) — whole framed
  /// records by construction — and reports the range end in `*end_lsn`.
  /// Waits out an in-flight group-commit leader so the read never races an
  /// append. `from_lsn` must be at or above the compaction base (guaranteed
  /// for any pinned cursor); a cursor at or ahead of the durable end (a
  /// group-commit record appended but not yet synced) reads an empty string
  /// with *end_lsn == from_lsn — nothing new durable yet, not an error.
  Result<std::string> ReadDurableFrom(uint64_t from_lsn, uint64_t* end_lsn);

  /// Bytes the file will hold once everything buffered is flushed — the
  /// auto-checkpoint trigger. (Not an LSN: compaction resets file size but
  /// never rewinds LSNs.)
  uint64_t LogBytes() const;

  /// The smallest LSN the log can still serve bytes from: the compaction
  /// base plus the magic, i.e. where the compacted snapshot record begins.
  uint64_t base_lsn() const;

  /// The smallest LSN a tailing follower may resume from. Distinct from
  /// base_lsn(): a rewrite replaces every record up to the rewrite point
  /// with ONE snapshot record, so LSNs strictly between base_lsn() and the
  /// rewrite point no longer land on record boundaries — serving a tail
  /// from there would ship bytes out of the middle of the snapshot frame.
  /// A follower whose position sits below this floor must re-bootstrap
  /// from a fresh snapshot instead of tailing.
  uint64_t min_resume_lsn() const;

  /// The sticky I/O failure, or OK.
  Status error() const;

  uint64_t durable_lsn() const;
  uint64_t appended_lsn() const;

  /// The underlying file; tests peek, nothing else should.
  LogFile* file() { return file_.get(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<LogFile> file_;
  std::string pending_;      // framed records not yet handed to the file
  uint64_t appended_lsn_;    // virtual end offset including pending_
  uint64_t durable_lsn_;     // virtual end offset through the last good fsync
  /// LSN-to-file-offset shift: file offset = lsn - base_offset_. Starts at
  /// 0 and grows at each Rewrite by however many bytes compaction dropped,
  /// keeping LSNs monotone so callers' saved LSNs stay comparable.
  uint64_t base_offset_ = 0;
  /// Smallest record-aligned LSN a tail may resume from; jumps to the
  /// rewrite point at each Rewrite (see min_resume_lsn()). Guarded by mu_.
  uint64_t min_resume_lsn_ = kWalMagicSize;
  bool leader_active_ = false;
  Status error_;
  /// Retention pins by id (see RegisterRetentionPin). Guarded by mu_.
  std::map<uint64_t, uint64_t> pins_;
  uint64_t next_pin_id_ = 1;
};

}  // namespace cypher::storage

#endif  // CYPHER_STORAGE_WAL_H_
