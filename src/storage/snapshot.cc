#include "storage/snapshot.h"

#include <charconv>
#include <vector>

#include "common/strings.h"
#include "graph/serialize.h"
#include "storage/wal.h"

namespace cypher::storage {

namespace {

// ---- Writers ----------------------------------------------------------------

/// ":A:B" suffix for a label set (empty for none) — the compact form both
/// the snapshot and PropertyGraph's redo lines use after an entity id.
std::string LabelsSuffix(const PropertyGraph& graph,
                         const std::vector<Symbol>& labels) {
  std::string out;
  for (Symbol label : labels) {
    out += ':';
    out += graph.LabelName(label);
  }
  return out;
}

// ---- Readers ----------------------------------------------------------------

/// Whitespace-separated token scanner over one line.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() && text[pos] == ' ') ++pos;
  }

  /// Next space-delimited token; empty at end of line.
  std::string_view Token() {
    SkipSpace();
    size_t start = pos;
    while (pos < text.size() && text[pos] != ' ') ++pos;
    return text.substr(start, pos - start);
  }

  /// Everything left (a trailing property literal).
  std::string_view Rest() {
    SkipSpace();
    return text.substr(pos);
  }
};

bool ParseU32(std::string_view token, uint32_t* out) {
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

/// Splits "5:A:B" into the id and its label names ("5" → no labels).
bool ParseIdLabels(std::string_view token, uint32_t* id,
                   std::vector<std::string_view>* labels) {
  size_t colon = token.find(':');
  std::string_view id_part =
      colon == std::string_view::npos ? token : token.substr(0, colon);
  if (!ParseU32(id_part, id)) return false;
  labels->clear();
  if (colon == std::string_view::npos) return true;
  std::string_view rest = token.substr(colon + 1);
  while (!rest.empty()) {
    size_t next = rest.find(':');
    std::string_view name =
        next == std::string_view::npos ? rest : rest.substr(0, next);
    if (name.empty()) return false;
    labels->push_back(name);
    rest = next == std::string_view::npos ? std::string_view()
                                          : rest.substr(next + 1);
  }
  return true;
}

/// ":Name" token → "Name".
bool ParseName(std::string_view token, std::string_view* out) {
  if (token.size() < 2 || token[0] != ':') return false;
  *out = token.substr(1);
  return true;
}

PropertyMap PropsFromMap(PropertyGraph* graph, const ValueMap& map) {
  PropertyMap props;
  for (const auto& [key, value] : map) {
    props.Set(graph->InternKey(key), value);
  }
  return props;
}

Status LineError(const char* what, size_t line_no) {
  return Status::InvalidArgument(std::string(what) + " at line " +
                                 std::to_string(line_no));
}

}  // namespace

std::string EncodeSnapshot(const PropertyGraph& graph) {
  std::string out;
  out += "nodes " + std::to_string(graph.node_capacity()) + "\n";
  out += "rels " + std::to_string(graph.rel_capacity()) + "\n";
  for (uint32_t i = 0; i < graph.node_capacity(); ++i) {
    NodeId id(i);
    if (!graph.IsNodeAlive(id)) continue;
    const NodeData& data = graph.node(id);
    out += "node " + std::to_string(i) + LabelsSuffix(graph, data.labels) +
           " " + DescribeProps(graph, data.props) + "\n";
  }
  for (uint32_t i = 0; i < graph.rel_capacity(); ++i) {
    RelId id(i);
    if (!graph.IsRelAlive(id)) continue;
    const RelData& data = graph.rel(id);
    out += "rel " + std::to_string(i) + " " + std::to_string(data.src.value) +
           " " + std::to_string(data.tgt.value) + " :" +
           graph.TypeName(data.type) + " " +
           DescribeProps(graph, data.props) + "\n";
  }
  for (const auto& [label, key] : graph.Indexes()) {
    out += "index :" + graph.LabelName(label) + " " + graph.KeyName(key) +
           "\n";
  }
  for (const auto& [label, key] : graph.UniqueConstraints()) {
    out +=
        "uniq :" + graph.LabelName(label) + " " + graph.KeyName(key) + "\n";
  }
  return out;
}

Result<PropertyGraph> DecodeSnapshot(std::string_view payload) {
  PropertyGraph graph;
  uint32_t node_capacity = 0;
  uint32_t rel_capacity = 0;
  bool have_header = false;
  size_t line_no = 0;
  for (const std::string& raw : Split(payload, '\n')) {
    ++line_no;
    std::string_view line = StripAsciiWhitespace(raw);
    if (line.empty()) continue;
    Cursor cursor{line};
    std::string_view kind = cursor.Token();
    if (kind == "nodes") {
      if (!ParseU32(cursor.Token(), &node_capacity)) {
        return LineError("malformed nodes header", line_no);
      }
      have_header = true;
      continue;
    }
    if (kind == "rels") {
      if (!have_header || !ParseU32(cursor.Token(), &rel_capacity)) {
        return LineError("malformed rels header", line_no);
      }
      continue;
    }
    if (!have_header) return LineError("missing snapshot header", line_no);
    if (kind == "node") {
      uint32_t slot = 0;
      std::vector<std::string_view> label_names;
      if (!ParseIdLabels(cursor.Token(), &slot, &label_names) ||
          slot >= node_capacity || slot < graph.node_capacity()) {
        return LineError("bad node slot", line_no);
      }
      while (graph.node_capacity() < slot) graph.AppendTombstoneNode();
      auto map = ParseLiteralMap(cursor.Rest());
      if (!map.ok()) return LineError("bad node properties", line_no);
      std::vector<Symbol> labels;
      labels.reserve(label_names.size());
      for (std::string_view name : label_names) {
        labels.push_back(graph.InternLabel(name));
      }
      graph.CreateNode(std::move(labels), PropsFromMap(&graph, *map));
      continue;
    }
    if (kind == "rel") {
      uint32_t slot = 0;
      uint32_t src = 0;
      uint32_t tgt = 0;
      std::string_view type;
      if (!ParseU32(cursor.Token(), &slot) ||
          !ParseU32(cursor.Token(), &src) ||
          !ParseU32(cursor.Token(), &tgt) ||
          !ParseName(cursor.Token(), &type) || slot >= rel_capacity ||
          slot < graph.rel_capacity()) {
        return LineError("bad rel line", line_no);
      }
      while (graph.rel_capacity() < slot) graph.AppendTombstoneRel();
      auto map = ParseLiteralMap(cursor.Rest());
      if (!map.ok()) return LineError("bad rel properties", line_no);
      auto rel = graph.CreateRel(NodeId(src), NodeId(tgt),
                                 graph.InternType(type),
                                 PropsFromMap(&graph, *map));
      if (!rel.ok()) return LineError("rel references dead slot", line_no);
      continue;
    }
    if (kind == "index" || kind == "uniq") {
      std::string_view label;
      std::string_view key = cursor.Token();
      // token order: ":Label" then bare key name
      std::string_view key_name = cursor.Token();
      if (!ParseName(key, &label) || key_name.empty()) {
        return LineError("bad index/uniq line", line_no);
      }
      // Indexes and constraints come after every entity line, so both
      // slot-capacity pads below have not run yet; interning here is safe.
      Symbol l = graph.InternLabel(label);
      Symbol k = graph.InternKey(key_name);
      if (kind == "index") {
        graph.CreateIndex(l, k);
      } else {
        Status st = graph.AddUniqueConstraint(l, k);
        if (!st.ok()) return st;
      }
      continue;
    }
    return LineError("unknown snapshot record", line_no);
  }
  if (!have_header) {
    return Status::InvalidArgument("snapshot without header");
  }
  while (graph.node_capacity() < node_capacity) graph.AppendTombstoneNode();
  while (graph.rel_capacity() < rel_capacity) graph.AppendTombstoneRel();
  return graph;
}

Status ApplyRedoLog(PropertyGraph* graph, std::string_view redo) {
  size_t line_no = 0;
  for (const std::string& raw : Split(redo, '\n')) {
    ++line_no;
    std::string_view line = StripAsciiWhitespace(raw);
    if (line.empty()) continue;
    Cursor cursor{line};
    std::string_view verb = cursor.Token();
    if (verb == "node+") {
      uint32_t id = 0;
      std::vector<std::string_view> label_names;
      if (!ParseIdLabels(cursor.Token(), &id, &label_names) ||
          id != graph->node_capacity()) {
        return LineError("redo creates node out of slot order", line_no);
      }
      auto map = ParseLiteralMap(cursor.Rest());
      if (!map.ok()) return LineError("bad node+ properties", line_no);
      std::vector<Symbol> labels;
      labels.reserve(label_names.size());
      for (std::string_view name : label_names) {
        labels.push_back(graph->InternLabel(name));
      }
      graph->CreateNode(std::move(labels), PropsFromMap(graph, *map));
      continue;
    }
    if (verb == "rel+") {
      uint32_t id = 0;
      uint32_t src = 0;
      uint32_t tgt = 0;
      std::string_view type;
      if (!ParseU32(cursor.Token(), &id) || !ParseU32(cursor.Token(), &src) ||
          !ParseU32(cursor.Token(), &tgt) ||
          !ParseName(cursor.Token(), &type) || id != graph->rel_capacity()) {
        return LineError("bad rel+ line", line_no);
      }
      auto map = ParseLiteralMap(cursor.Rest());
      if (!map.ok()) return LineError("bad rel+ properties", line_no);
      auto rel =
          graph->CreateRel(NodeId(src), NodeId(tgt), graph->InternType(type),
                           PropsFromMap(graph, *map));
      if (!rel.ok()) return LineError("rel+ references dead slot", line_no);
      continue;
    }
    if (verb == "rel-") {
      uint32_t id = 0;
      if (!ParseU32(cursor.Token(), &id) || !graph->IsValidRel(RelId(id))) {
        return LineError("bad rel- line", line_no);
      }
      graph->DeleteRel(RelId(id));
      continue;
    }
    if (verb == "node-") {
      uint32_t id = 0;
      if (!ParseU32(cursor.Token(), &id) || !graph->IsValidNode(NodeId(id))) {
        return LineError("bad node- line", line_no);
      }
      // Force-style delete: in legacy order the node can go before its
      // incident relationships within one statement.
      graph->DeleteNodeForce(NodeId(id));
      continue;
    }
    if (verb == "label+" || verb == "label-") {
      uint32_t id = 0;
      std::string_view name;
      if (!ParseU32(cursor.Token(), &id) ||
          !ParseName(cursor.Token(), &name) ||
          !graph->IsValidNode(NodeId(id))) {
        return LineError("bad label line", line_no);
      }
      Symbol label = graph->InternLabel(name);
      if (verb == "label+") {
        graph->AddLabel(NodeId(id), label);
      } else {
        graph->RemoveLabel(NodeId(id), label);
      }
      continue;
    }
    if (verb == "prop" || verb == "props") {
      std::string_view kind = cursor.Token();
      uint32_t id = 0;
      if ((kind != "N" && kind != "R") || !ParseU32(cursor.Token(), &id)) {
        return LineError("bad prop line", line_no);
      }
      EntityRef entity = kind == "N" ? EntityRef::Node(NodeId(id))
                                     : EntityRef::Rel(RelId(id));
      if (kind == "N" ? !graph->IsValidNode(NodeId(id))
                      : !graph->IsValidRel(RelId(id))) {
        return LineError("prop line references unknown slot", line_no);
      }
      if (verb == "prop") {
        std::string_view key = cursor.Token();
        if (key.empty()) return LineError("bad prop key", line_no);
        auto value = ParseLiteral(cursor.Rest());
        if (!value.ok()) return LineError("bad prop literal", line_no);
        graph->SetProperty(entity, graph->InternKey(key), *std::move(value));
      } else {
        auto map = ParseLiteralMap(cursor.Rest());
        if (!map.ok()) return LineError("bad props literal", line_no);
        graph->ReplaceProperties(entity, PropsFromMap(graph, *map));
      }
      continue;
    }
    if (verb == "index+" || verb == "index-" || verb == "uniq+" ||
        verb == "uniq-") {
      std::string_view label;
      if (!ParseName(cursor.Token(), &label)) {
        return LineError("bad ddl line", line_no);
      }
      std::string_view key = cursor.Token();
      if (key.empty()) return LineError("bad ddl key", line_no);
      Symbol l = graph->InternLabel(label);
      Symbol k = graph->InternKey(key);
      if (verb == "index+") {
        graph->CreateIndex(l, k);
      } else if (verb == "index-") {
        graph->DropIndex(l, k);
      } else if (verb == "uniq+") {
        Status st = graph->AddUniqueConstraint(l, k);
        if (!st.ok()) return st;
      } else {
        graph->DropUniqueConstraint(l, k);
      }
      continue;
    }
    return LineError("unknown redo verb", line_no);
  }
  return Status::OK();
}

Result<RecoveredGraph> RecoverGraph(std::string_view wal_bytes) {
  CYPHER_ASSIGN_OR_RETURN(WalContents contents, DecodeWal(wal_bytes));
  RecoveredGraph out;
  out.valid_bytes = contents.valid_bytes;
  out.torn_tail = contents.torn_tail;
  // The latest snapshot wins; everything before it is dead weight kept only
  // because logs are append-only (Checkpoint appends a fresh snapshot).
  size_t start = 0;
  bool have_snapshot = false;
  for (size_t i = 0; i < contents.records.size(); ++i) {
    if (contents.records[i].type == WalRecordType::kSnapshot) {
      start = i;
      have_snapshot = true;
    }
  }
  if (have_snapshot) {
    CYPHER_ASSIGN_OR_RETURN(
        out.graph, DecodeSnapshot(contents.records[start].payload));
    ++start;
  }
  for (size_t i = start; i < contents.records.size(); ++i) {
    Status st = ApplyRedoLog(&out.graph, contents.records[i].payload);
    if (!st.ok()) return st;
    ++out.statements;
  }
  return out;
}

}  // namespace cypher::storage
