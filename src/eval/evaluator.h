#ifndef CYPHER_EVAL_EVALUATOR_H_
#define CYPHER_EVAL_EVALUATOR_H_

#include <vector>

#include "ast/expr.h"
#include "common/result.h"
#include "eval/env.h"
#include "value/compare.h"

namespace cypher {

/// Rows an aggregate ranges over: one group produced by the projection
/// executor's implicit grouping. Aggregate subexpressions iterate these
/// rows; everything outside an aggregate sees the group's representative
/// bindings.
struct AggregateScope {
  const Table* table = nullptr;
  const std::vector<size_t>* rows = nullptr;
};

/// Per-row evaluator with name resolution hoisted out of the loop, for the
/// two expression shapes that dominate projection and aggregation workloads:
/// a bare variable (`u`) and a property of a bare variable (`u.name`). The
/// table column and property Symbol are resolved once at construction;
/// Eval(row) then reads cells directly, with no string hashing per row.
/// Any other shape — or a cell whose type the fast path does not cover —
/// falls back to the generic evaluator, so semantics are identical.
///
/// Valid only while `table` and `expr` outlive the evaluator, and only for
/// bindings with no local overlay (the projection executor's row loops).
///
/// Thread-compatibility: construction resolves names (may intern — must
/// happen before a parallel region); Eval() is const and touches only the
/// immutable resolution, the table and the graph, so one RowEval may be
/// shared by every worker of a parallel region, each evaluating its own
/// row range concurrently.
class RowEval {
 public:
  RowEval(const EvalContext& ctx, const Table& table, const Expr& expr);
  Result<Value> Eval(size_t row) const;

 private:
  enum class Mode { kGeneric, kColumn, kColumnProp };
  const EvalContext* ctx_;
  const Table* table_;
  const Expr* expr_;
  Mode mode_ = Mode::kGeneric;
  size_t col_ = 0;
  Symbol key_ = kNoSymbol;  // kColumnProp; kNoSymbol when never interned
};

/// Evaluates [[e]]_{G,u}: expression `expr` on graph `ctx.graph` under the
/// variable assignment `bindings` (the record u).
///
/// `agg` must be non-null when `expr` may contain aggregate functions
/// (RETURN/WITH item evaluation); anywhere else an aggregate yields a
/// SemanticError. Type errors (e.g. `1 + 'a'.prop`) yield ExecutionError;
/// null inputs propagate per Cypher's ternary logic instead of erroring.
Result<Value> Evaluate(const EvalContext& ctx, const Bindings& bindings,
                       const Expr& expr, const AggregateScope* agg = nullptr);

/// Evaluates a predicate to a ternary truth value: null and non-boolean
/// results count as kNull (per openCypher WHERE semantics a non-boolean
/// non-null predicate is an error; we fold it to kNull and the caller of
/// EvaluatePredicateStrict can choose to error).
Result<Tri> EvaluatePredicate(const EvalContext& ctx, const Bindings& bindings,
                              const Expr& expr);

// ---- Shared value kernels ---------------------------------------------------
//
// The tree evaluator above and the bytecode expression VM
// (src/vm/expr_program.cc) both apply these functions to already-evaluated
// operand values. Keeping exactly one implementation of the coercions,
// ternary logic and error strings is what makes the two execution tiers
// byte-identical by construction.

/// The kUnary rule: NOT / unary minus / unary plus on an evaluated operand.
Result<Value> EvalUnaryValue(UnaryOp op, const Value& v);

/// The kBinary rule on two evaluated operands (both sides are always
/// evaluated first — ternary logic needs them — so value-level application
/// is exactly the tree semantics).
Result<Value> EvalBinaryValues(BinaryOp op, const Value& a, const Value& b);

/// The kProperty rule on an evaluated object (node / relationship / map).
Result<Value> EvalPropertyValue(const EvalContext& ctx, const Value& object,
                                const std::string& key);

/// The kHasLabels rule on an evaluated object.
Result<Value> EvalHasLabelsValue(const EvalContext& ctx, const Value& object,
                                 const std::vector<std::string>& labels);

/// The kIndex subscript rule on evaluated object and index values.
Result<Value> EvalIndexValue(const Value& object, const Value& index);

/// Calls a non-aggregate built-in function on evaluated arguments.
Result<Value> EvalScalarFunction(const EvalContext& ctx,
                                 const std::string& name,
                                 std::vector<Value> args);

/// The predicate coercion used by WHERE: bool -> Tri, null -> kNull, any
/// other type -> the "predicate evaluated to <type>" ExecutionError.
Result<Tri> PredicateTri(const Value& v);

}  // namespace cypher

#endif  // CYPHER_EVAL_EVALUATOR_H_
