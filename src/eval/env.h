#ifndef CYPHER_EVAL_ENV_H_
#define CYPHER_EVAL_ENV_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/read_pin.h"
#include "graph/graph.h"
#include "table/table.h"
#include "value/value.h"

namespace cypher {

/// Relationship-repetition policy during pattern matching.
///
/// kRelUnique is Cypher's semantics (Section 2): distinct relationship
/// patterns in one MATCH must bind distinct relationships ("trail"
/// semantics) — this is what keeps `MATCH (v)-[*]->(v)` finite.
/// kHomomorphism lifts the restriction (planned for future Cypher per
/// Section 6, needed to re-match Strong Collapse outputs in Example 7).
enum class MatchMode { kRelUnique, kHomomorphism };

/// Statement-wide evaluation context: the graph G that expressions read,
/// the caller's parameter map, and the matching mode (used by existential
/// pattern predicates inside expressions).
struct EvalContext {
  const PropertyGraph* graph = nullptr;
  const ValueMap* params = nullptr;
  MatchMode match_mode = MatchMode::kRelUnique;
  /// Watchdog token the match/expansion loops poll (through a CancelGate);
  /// null means the statement runs uncancellable.
  const CancelToken* cancel = nullptr;
  /// Snapshot pin when this statement runs in an MVCC read session; null on
  /// the writer. Match compilation consults it (pinned plans skip index
  /// anchors — property indexes are not versioned); record resolution
  /// itself rides the thread-local pin, not this pointer.
  const ReadPin* read_pin = nullptr;
};

/// One record u of the driving table, viewed without copying, plus an
/// overlay for locally-scoped variables (the FOREACH iteration variable and
/// CREATE's saturation temporaries).
class Bindings {
 public:
  /// An empty environment (no variables bound).
  Bindings() = default;

  /// Views row `row` of `table`. The table must outlive the bindings.
  Bindings(const Table* table, size_t row) : table_(table), row_(row) {}

  /// Adds/overrides a local binding (shadowing the table's column).
  void Push(std::string name, Value value) {
    extras_.emplace_back(std::move(name), std::move(value));
  }

  void Pop() { extras_.pop_back(); }

  /// Looks up a variable; nullopt when unbound (distinct from bound-to-null).
  std::optional<Value> Lookup(std::string_view name) const {
    for (auto it = extras_.rbegin(); it != extras_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    if (table_ != nullptr) {
      size_t col = table_->ColumnIndex(name);
      if (col != Table::kNoColumn) return table_->At(row_, col);
    }
    return std::nullopt;
  }

  bool IsBound(std::string_view name) const { return Lookup(name).has_value(); }

  const Table* table() const { return table_; }
  size_t row() const { return row_; }

 private:
  const Table* table_ = nullptr;
  size_t row_ = 0;
  std::vector<std::pair<std::string, Value>> extras_;
};

}  // namespace cypher

#endif  // CYPHER_EVAL_ENV_H_
