#include "eval/evaluator.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "common/check.h"
#include "common/strings.h"
#include "match/matcher.h"

namespace cypher {

namespace {

Status TypeError(const std::string& what) {
  return Status::ExecutionError(what);
}

Value TriToValue(Tri t) {
  switch (t) {
    case Tri::kTrue:
      return Value::Bool(true);
    case Tri::kFalse:
      return Value::Bool(false);
    case Tri::kNull:
      return Value::Null();
  }
  return Value::Null();
}

// ---- Arithmetic -------------------------------------------------------------

Result<Value> EvalAdd(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_int() && b.is_int()) {
    int64_t out;
    if (__builtin_add_overflow(a.AsInt(), b.AsInt(), &out)) {
      return TypeError("integer overflow in addition");
    }
    return Value::Int(out);
  }
  if (a.is_number() && b.is_number()) {
    return Value::Float(a.AsNumber() + b.AsNumber());
  }
  if (a.is_string() || b.is_string()) {
    auto text = [](const Value& v) -> Result<std::string> {
      if (v.is_string()) return v.AsString();
      if (v.is_int()) return std::to_string(v.AsInt());
      if (v.is_float()) return FormatDouble(v.AsFloat());
      if (v.is_bool()) return std::string(v.AsBool() ? "true" : "false");
      return TypeError("cannot concatenate " + std::string(ValueTypeName(v.type())) +
                       " to a string");
    };
    CYPHER_ASSIGN_OR_RETURN(std::string left, text(a));
    CYPHER_ASSIGN_OR_RETURN(std::string right, text(b));
    return Value::String(left + right);
  }
  if (a.is_list() && b.is_list()) {
    ValueList out = a.AsList();
    for (const Value& v : b.AsList()) out.push_back(v);
    return Value::List(std::move(out));
  }
  if (a.is_list()) {
    ValueList out = a.AsList();
    out.push_back(b);
    return Value::List(std::move(out));
  }
  return TypeError(std::string("cannot add ") + ValueTypeName(a.type()) +
                   " and " + ValueTypeName(b.type()));
}

Result<Value> EvalArith(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_number() || !b.is_number()) {
    return TypeError(std::string("cannot apply arithmetic to ") +
                     ValueTypeName(a.type()) + " and " +
                     ValueTypeName(b.type()));
  }
  bool ints = a.is_int() && b.is_int();
  switch (op) {
    case BinaryOp::kSub:
      if (ints) {
        int64_t out;
        if (__builtin_sub_overflow(a.AsInt(), b.AsInt(), &out)) {
          return TypeError("integer overflow in subtraction");
        }
        return Value::Int(out);
      }
      return Value::Float(a.AsNumber() - b.AsNumber());
    case BinaryOp::kMul:
      if (ints) {
        int64_t out;
        if (__builtin_mul_overflow(a.AsInt(), b.AsInt(), &out)) {
          return TypeError("integer overflow in multiplication");
        }
        return Value::Int(out);
      }
      return Value::Float(a.AsNumber() * b.AsNumber());
    case BinaryOp::kDiv:
      if (ints) {
        if (b.AsInt() == 0) return TypeError("division by zero");
        return Value::Int(a.AsInt() / b.AsInt());
      }
      return Value::Float(a.AsNumber() / b.AsNumber());
    case BinaryOp::kMod:
      if (ints) {
        if (b.AsInt() == 0) return TypeError("modulo by zero");
        return Value::Int(a.AsInt() % b.AsInt());
      }
      return Value::Float(std::fmod(a.AsNumber(), b.AsNumber()));
    case BinaryOp::kPow:
      return Value::Float(std::pow(a.AsNumber(), b.AsNumber()));
    default:
      CYPHER_CHECK(false && "not an arithmetic op");
  }
  return Value::Null();
}

Tri EvalStringOp(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Tri::kNull;
  if (!a.is_string() || !b.is_string()) return Tri::kNull;
  const std::string& s = a.AsString();
  const std::string& t = b.AsString();
  switch (op) {
    case BinaryOp::kStartsWith:
      return TriFromBool(s.size() >= t.size() && s.compare(0, t.size(), t) == 0);
    case BinaryOp::kEndsWith:
      return TriFromBool(s.size() >= t.size() &&
                         s.compare(s.size() - t.size(), t.size(), t) == 0);
    case BinaryOp::kContains:
      return TriFromBool(s.find(t) != std::string::npos);
    default:
      CYPHER_CHECK(false && "not a string op");
  }
  return Tri::kNull;
}

Tri EvalIn(const Value& item, const Value& list) {
  if (list.is_null()) return Tri::kNull;
  Tri acc = Tri::kFalse;
  for (const Value& element : list.AsList()) {
    Tri t = CypherEquals(item, element);
    if (t == Tri::kTrue) return Tri::kTrue;
    if (t == Tri::kNull) acc = Tri::kNull;
  }
  return acc;
}

// ---- Hash-set of values under grouping equivalence (DISTINCT aggregates) ----

struct ValueHash {
  uint64_t operator()(const Value& v) const { return HashValue(v); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return GroupEquals(a, b);
  }
};
using ValueSet = std::unordered_set<Value, ValueHash, ValueEq>;

}  // namespace

// ---- Shared value kernels ---------------------------------------------------
//
// Applied to already-evaluated operands by both the tree evaluator below and
// the bytecode expression VM; see the declarations in evaluator.h.

Result<Value> EvalScalarFunction(const EvalContext& ctx,
                                 const std::string& name,
                                 std::vector<Value> args) {
  const PropertyGraph& g = *ctx.graph;
  auto arity = [&](size_t n) -> Status {
    if (args.size() == n) return Status::OK();
    return TypeError("function " + name + " expects " + std::to_string(n) +
                     " argument(s), got " + std::to_string(args.size()));
  };
  if (name == "coalesce") {
    for (Value& v : args) {
      if (!v.is_null()) return std::move(v);
    }
    return Value::Null();
  }
  if (name == "id") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_node()) return Value::Int(args[0].AsNode().value);
    if (args[0].is_rel()) return Value::Int(args[0].AsRel().value);
    return TypeError("id() expects a node or relationship");
  }
  if (name == "labels") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_node()) return TypeError("labels() expects a node");
    ValueList out;
    for (Symbol s : g.node(args[0].AsNode()).labels) {
      out.push_back(Value::String(g.LabelName(s)));
    }
    return Value::List(std::move(out));
  }
  if (name == "type") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_rel()) return TypeError("type() expects a relationship");
    return Value::String(g.TypeName(g.rel(args[0].AsRel()).type));
  }
  if (name == "properties") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    const PropertyMap* props = nullptr;
    if (args[0].is_node()) {
      props = &g.node(args[0].AsNode()).props;
    } else if (args[0].is_rel()) {
      props = &g.rel(args[0].AsRel()).props;
    } else if (args[0].is_map()) {
      return std::move(args[0]);
    } else {
      return TypeError("properties() expects a node, relationship or map");
    }
    ValueMap out;
    for (const auto& [key, value] : props->entries()) {
      out.emplace(g.KeyName(key), value);
    }
    return Value::Map(std::move(out));
  }
  if (name == "keys") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    ValueList out;
    if (args[0].is_node() || args[0].is_rel()) {
      const PropertyMap& props = args[0].is_node()
                                     ? g.node(args[0].AsNode()).props
                                     : g.rel(args[0].AsRel()).props;
      for (const auto& [key, value] : props.entries()) {
        out.push_back(Value::String(g.KeyName(key)));
      }
    } else if (args[0].is_map()) {
      for (const auto& [key, value] : args[0].AsMap()) {
        out.push_back(Value::String(key));
      }
    } else {
      return TypeError("keys() expects a node, relationship or map");
    }
    return Value::List(std::move(out));
  }
  if (name == "size") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_list()) {
      return Value::Int(static_cast<int64_t>(args[0].AsList().size()));
    }
    if (args[0].is_string()) {
      return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
    }
    if (args[0].is_map()) {
      return Value::Int(static_cast<int64_t>(args[0].AsMap().size()));
    }
    return TypeError("size() expects a list, string or map");
  }
  if (name == "length") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_path()) {
      return Value::Int(static_cast<int64_t>(args[0].AsPath().rels.size()));
    }
    if (args[0].is_list()) {
      return Value::Int(static_cast<int64_t>(args[0].AsList().size()));
    }
    return TypeError("length() expects a path or list");
  }
  if (name == "head") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_list()) return TypeError("head() expects a list");
    const ValueList& list = args[0].AsList();
    return list.empty() ? Value::Null() : list.front();
  }
  if (name == "last") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_list()) return TypeError("last() expects a list");
    const ValueList& list = args[0].AsList();
    return list.empty() ? Value::Null() : list.back();
  }
  if (name == "nodes") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_path()) return TypeError("nodes() expects a path");
    ValueList out;
    for (NodeId n : args[0].AsPath().nodes) out.push_back(Value::Node(n));
    return Value::List(std::move(out));
  }
  if (name == "relationships") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_path()) return TypeError("relationships() expects a path");
    ValueList out;
    for (RelId r : args[0].AsPath().rels) out.push_back(Value::Rel(r));
    return Value::List(std::move(out));
  }
  if (name == "startnode" || name == "endnode") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_rel()) return TypeError(name + "() expects a relationship");
    const RelData& rel = g.rel(args[0].AsRel());
    return Value::Node(name == "startnode" ? rel.src : rel.tgt);
  }
  if (name == "exists") {
    CYPHER_RETURN_NOT_OK(arity(1));
    return Value::Bool(!args[0].is_null());
  }
  if (name == "tostring") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_string()) return std::move(args[0]);
    if (args[0].is_int()) return Value::String(std::to_string(args[0].AsInt()));
    if (args[0].is_float()) return Value::String(FormatDouble(args[0].AsFloat()));
    if (args[0].is_bool()) {
      return Value::String(args[0].AsBool() ? "true" : "false");
    }
    return TypeError("toString() expects a scalar");
  }
  if (name == "tointeger") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_int()) return std::move(args[0]);
    if (args[0].is_float()) {
      return Value::Int(static_cast<int64_t>(args[0].AsFloat()));
    }
    if (args[0].is_string()) {
      const std::string& s = args[0].AsString();
      size_t pos = 0;
      long long parsed = 0;
      bool ok = !s.empty();
      if (ok) {
        char* end = nullptr;
        parsed = std::strtoll(s.c_str(), &end, 10);
        pos = static_cast<size_t>(end - s.c_str());
        ok = pos == s.size();
      }
      return ok ? Value::Int(parsed) : Value::Null();
    }
    return TypeError("toInteger() expects a number or string");
  }
  if (name == "tofloat") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_float()) return std::move(args[0]);
    if (args[0].is_int()) {
      return Value::Float(static_cast<double>(args[0].AsInt()));
    }
    if (args[0].is_string()) {
      const std::string& s = args[0].AsString();
      char* end = nullptr;
      double parsed = std::strtod(s.c_str(), &end);
      bool ok = !s.empty() && end == s.c_str() + s.size();
      return ok ? Value::Float(parsed) : Value::Null();
    }
    return TypeError("toFloat() expects a number or string");
  }
  if (name == "abs") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_int()) {
      int64_t v = args[0].AsInt();
      return Value::Int(v < 0 ? -v : v);
    }
    if (args[0].is_float()) return Value::Float(std::fabs(args[0].AsFloat()));
    return TypeError("abs() expects a number");
  }
  if (name == "range") {
    if (args.size() != 2 && args.size() != 3) {
      return TypeError("range() expects 2 or 3 arguments");
    }
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null();
      if (!v.is_int()) return TypeError("range() expects integers");
    }
    int64_t lo = args[0].AsInt();
    int64_t hi = args[1].AsInt();
    int64_t step = args.size() == 3 ? args[2].AsInt() : 1;
    if (step == 0) return TypeError("range() step must not be zero");
    ValueList out;
    if (step > 0) {
      for (int64_t i = lo; i <= hi; i += step) out.push_back(Value::Int(i));
    } else {
      for (int64_t i = lo; i >= hi; i += step) out.push_back(Value::Int(i));
    }
    return Value::List(std::move(out));
  }
  if (name == "reverse") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_list()) {
      ValueList out = args[0].AsList();
      std::reverse(out.begin(), out.end());
      return Value::List(std::move(out));
    }
    if (args[0].is_string()) {
      std::string out = args[0].AsString();
      std::reverse(out.begin(), out.end());
      return Value::String(std::move(out));
    }
    return TypeError("reverse() expects a list or string");
  }
  if (name == "substring") {
    if (args.size() != 2 && args.size() != 3) {
      return TypeError("substring() expects 2 or 3 arguments");
    }
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_string() || !args[1].is_int() ||
        (args.size() == 3 && !args[2].is_int())) {
      return TypeError("substring() expects (string, int[, int])");
    }
    const std::string& s = args[0].AsString();
    int64_t start = args[1].AsInt();
    if (start < 0) return TypeError("substring() start must be >= 0");
    if (static_cast<size_t>(start) >= s.size()) return Value::String("");
    size_t len = args.size() == 3
                     ? static_cast<size_t>(std::max<int64_t>(0, args[2].AsInt()))
                     : std::string::npos;
    return Value::String(s.substr(static_cast<size_t>(start), len));
  }
  if (name == "left" || name == "right") {
    CYPHER_RETURN_NOT_OK(arity(2));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_string() || !args[1].is_int() || args[1].AsInt() < 0) {
      return TypeError(name + "() expects (string, non-negative int)");
    }
    const std::string& s = args[0].AsString();
    size_t n = std::min(s.size(), static_cast<size_t>(args[1].AsInt()));
    return Value::String(name == "left" ? s.substr(0, n)
                                        : s.substr(s.size() - n));
  }
  if (name == "replace") {
    CYPHER_RETURN_NOT_OK(arity(3));
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null();
      if (!v.is_string()) return TypeError("replace() expects strings");
    }
    const std::string& s = args[0].AsString();
    const std::string& find = args[1].AsString();
    const std::string& repl = args[2].AsString();
    if (find.empty()) return Value::String(s);
    std::string out;
    size_t pos = 0;
    while (true) {
      size_t hit = s.find(find, pos);
      if (hit == std::string::npos) {
        out += s.substr(pos);
        return Value::String(std::move(out));
      }
      out += s.substr(pos, hit - pos);
      out += repl;
      pos = hit + find.size();
    }
  }
  if (name == "split") {
    CYPHER_RETURN_NOT_OK(arity(2));
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    if (!args[0].is_string() || !args[1].is_string()) {
      return TypeError("split() expects strings");
    }
    const std::string& s = args[0].AsString();
    const std::string& sep = args[1].AsString();
    ValueList out;
    if (sep.empty()) {
      for (char c : s) out.push_back(Value::String(std::string(1, c)));
      return Value::List(std::move(out));
    }
    size_t pos = 0;
    while (true) {
      size_t hit = s.find(sep, pos);
      if (hit == std::string::npos) {
        out.push_back(Value::String(s.substr(pos)));
        return Value::List(std::move(out));
      }
      out.push_back(Value::String(s.substr(pos, hit - pos)));
      pos = hit + sep.size();
    }
  }
  if (name == "trim" || name == "ltrim" || name == "rtrim") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_string()) return TypeError(name + "() expects a string");
    std::string s = args[0].AsString();
    if (name != "rtrim") {
      size_t b = 0;
      while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) {
        ++b;
      }
      s.erase(0, b);
    }
    if (name != "ltrim") {
      size_t e = s.size();
      while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
        --e;
      }
      s.erase(e);
    }
    return Value::String(std::move(s));
  }
  if (name == "floor" || name == "ceil" || name == "round" ||
      name == "sqrt") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_number()) return TypeError(name + "() expects a number");
    double x = args[0].AsNumber();
    if (name == "floor") return Value::Float(std::floor(x));
    if (name == "ceil") return Value::Float(std::ceil(x));
    if (name == "round") return Value::Float(std::round(x));
    if (x < 0) return TypeError("sqrt() of a negative number");
    return Value::Float(std::sqrt(x));
  }
  if (name == "sign") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_number()) return TypeError("sign() expects a number");
    double x = args[0].AsNumber();
    return Value::Int(x > 0 ? 1 : x < 0 ? -1 : 0);
  }
  if (name == "tail") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_list()) return TypeError("tail() expects a list");
    const ValueList& list = args[0].AsList();
    if (list.empty()) return Value::List({});
    return Value::List(ValueList(list.begin() + 1, list.end()));
  }
  if (name == "tolower" || name == "toupper") {
    CYPHER_RETURN_NOT_OK(arity(1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_string()) return TypeError(name + "() expects a string");
    std::string out = args[0].AsString();
    for (char& c : out) {
      c = name == "tolower"
              ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
              : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return Value::String(std::move(out));
  }
  return TypeError("unknown function: " + name);
}

Result<Value> EvalUnaryValue(UnaryOp op, const Value& v) {
  switch (op) {
    case UnaryOp::kNot: {
      if (v.is_null()) return Value::Null();
      if (!v.is_bool()) return TypeError("NOT expects a boolean");
      return Value::Bool(!v.AsBool());
    }
    case UnaryOp::kMinus: {
      if (v.is_null()) return Value::Null();
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_float()) return Value::Float(-v.AsFloat());
      return TypeError("unary minus expects a number");
    }
    case UnaryOp::kPlus: {
      if (v.is_null() || v.is_number()) return v;
      return TypeError("unary plus expects a number");
    }
  }
  return Value::Null();
}

Result<Value> EvalBinaryValues(BinaryOp op, const Value& a, const Value& b) {
  auto as_tri = [](const Value& v) -> Result<Tri> {
    if (v.is_null()) return Tri::kNull;
    if (v.is_bool()) return TriFromBool(v.AsBool());
    return TypeError("expected a boolean operand");
  };
  switch (op) {
    case BinaryOp::kAnd: {
      CYPHER_ASSIGN_OR_RETURN(Tri ta, as_tri(a));
      CYPHER_ASSIGN_OR_RETURN(Tri tb, as_tri(b));
      return TriToValue(TriAnd(ta, tb));
    }
    case BinaryOp::kOr: {
      CYPHER_ASSIGN_OR_RETURN(Tri ta, as_tri(a));
      CYPHER_ASSIGN_OR_RETURN(Tri tb, as_tri(b));
      return TriToValue(TriOr(ta, tb));
    }
    case BinaryOp::kXor: {
      CYPHER_ASSIGN_OR_RETURN(Tri ta, as_tri(a));
      CYPHER_ASSIGN_OR_RETURN(Tri tb, as_tri(b));
      return TriToValue(TriXor(ta, tb));
    }
    case BinaryOp::kAdd:
      return EvalAdd(a, b);
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
    case BinaryOp::kPow:
      return EvalArith(op, a, b);
    case BinaryOp::kEq:
      return TriToValue(CypherEquals(a, b));
    case BinaryOp::kNe:
      return TriToValue(TriNot(CypherEquals(a, b)));
    case BinaryOp::kLt:
      return TriToValue(CypherLess(a, b));
    case BinaryOp::kGt:
      return TriToValue(CypherLess(b, a));
    case BinaryOp::kLe:
      return TriToValue(TriOr(CypherLess(a, b), CypherEquals(a, b)));
    case BinaryOp::kGe:
      return TriToValue(TriOr(CypherLess(b, a), CypherEquals(a, b)));
    case BinaryOp::kIn: {
      if (!b.is_null() && !b.is_list()) {
        return TypeError("IN expects a list on the right-hand side");
      }
      return TriToValue(EvalIn(a, b));
    }
    case BinaryOp::kStartsWith:
    case BinaryOp::kEndsWith:
    case BinaryOp::kContains:
      return TriToValue(EvalStringOp(op, a, b));
  }
  return Value::Null();
}

Result<Value> EvalPropertyValue(const EvalContext& ctx, const Value& object,
                                const std::string& key) {
  if (object.is_null()) return Value::Null();
  if (object.is_node()) {
    Symbol sym = ctx.graph->FindKey(key);
    if (sym == kNoSymbol) return Value::Null();
    return ctx.graph->node(object.AsNode()).props.Get(sym);
  }
  if (object.is_rel()) {
    Symbol sym = ctx.graph->FindKey(key);
    if (sym == kNoSymbol) return Value::Null();
    return ctx.graph->rel(object.AsRel()).props.Get(sym);
  }
  if (object.is_map()) {
    auto it = object.AsMap().find(key);
    return it == object.AsMap().end() ? Value::Null() : it->second;
  }
  return TypeError(std::string("cannot access property '") + key + "' of " +
                   ValueTypeName(object.type()));
}

Result<Value> EvalHasLabelsValue(const EvalContext& ctx, const Value& object,
                                 const std::vector<std::string>& labels) {
  if (object.is_null()) return Value::Null();
  if (!object.is_node()) {
    return TypeError("label predicate applies to nodes only");
  }
  NodeId id = object.AsNode();
  for (const std::string& label : labels) {
    Symbol s = ctx.graph->FindLabel(label);
    if (s == kNoSymbol || !ctx.graph->NodeHasLabel(id, s)) {
      return Value::Bool(false);
    }
  }
  return Value::Bool(true);
}

Result<Value> EvalIndexValue(const Value& object, const Value& index) {
  if (object.is_null() || index.is_null()) return Value::Null();
  if (object.is_list()) {
    if (!index.is_int()) return TypeError("list index must be an integer");
    int64_t i = index.AsInt();
    const ValueList& list = object.AsList();
    if (i < 0) i += static_cast<int64_t>(list.size());
    if (i < 0 || i >= static_cast<int64_t>(list.size())) {
      return Value::Null();
    }
    return list[static_cast<size_t>(i)];
  }
  if (object.is_map()) {
    if (!index.is_string()) return TypeError("map key must be a string");
    auto it = object.AsMap().find(index.AsString());
    return it == object.AsMap().end() ? Value::Null() : it->second;
  }
  return TypeError("subscript applies to lists and maps");
}

Result<Tri> PredicateTri(const Value& v) {
  if (v.is_bool()) return TriFromBool(v.AsBool());
  if (v.is_null()) return Tri::kNull;
  return Status::ExecutionError("predicate evaluated to " +
                                std::string(ValueTypeName(v.type())) +
                                ", expected a boolean");
}

// ---- Row-loop fast path -----------------------------------------------------

RowEval::RowEval(const EvalContext& ctx, const Table& table, const Expr& expr)
    : ctx_(&ctx), table_(&table), expr_(&expr) {
  const Expr* base = &expr;
  const PropertyExpr* prop = nullptr;
  if (expr.kind == ExprKind::kProperty) {
    prop = static_cast<const PropertyExpr*>(&expr);
    base = prop->object.get();
  }
  if (base->kind != ExprKind::kVariable) return;
  size_t col = table.ColumnIndex(static_cast<const VariableExpr*>(base)->name);
  if (col == Table::kNoColumn) return;  // FOREACH/CREATE overlay or error
  col_ = col;
  if (prop == nullptr) {
    mode_ = Mode::kColumn;
  } else {
    key_ = ctx.graph->FindKey(prop->key);
    mode_ = Mode::kColumnProp;
  }
}

Result<Value> RowEval::Eval(size_t row) const {
  if (mode_ != Mode::kGeneric) {
    const Value& base = table_->At(row, col_);
    if (mode_ == Mode::kColumn) return base;
    if (base.is_null()) return Value::Null();
    if (base.is_node()) {
      if (key_ == kNoSymbol) return Value::Null();
      return ctx_->graph->node(base.AsNode()).props.Get(key_);
    }
    if (base.is_rel()) {
      if (key_ == kNoSymbol) return Value::Null();
      return ctx_->graph->rel(base.AsRel()).props.Get(key_);
    }
    // Maps and type errors: the generic property rules apply below.
  }
  return Evaluate(*ctx_, Bindings(table_, row), *expr_);
}

// ---- Aggregates -------------------------------------------------------------

namespace {

Result<Value> EvaluateAggregateCall(const EvalContext& ctx,
                                    const FunctionExpr* call, bool count_star,
                                    const AggregateScope& agg) {
  if (count_star) {
    return Value::Int(static_cast<int64_t>(agg.rows->size()));
  }
  CYPHER_CHECK(call != nullptr && call->args.size() == 1);
  RowEval arg(ctx, *agg.table, *call->args[0]);
  // count(expr) without DISTINCT needs no materialized values at all.
  if (call->name == "count" && !call->distinct) {
    int64_t n = 0;
    for (size_t row : *agg.rows) {
      CYPHER_ASSIGN_OR_RETURN(Value v, arg.Eval(row));
      if (!v.is_null()) ++n;
    }
    return Value::Int(n);
  }
  // Gather the argument value for every row of the group; null inputs are
  // skipped by every aggregate (SQL-style).
  std::vector<Value> values;
  values.reserve(agg.rows->size());
  for (size_t row : *agg.rows) {
    CYPHER_ASSIGN_OR_RETURN(Value v, arg.Eval(row));
    if (!v.is_null()) values.push_back(std::move(v));
  }
  if (call->distinct) {
    ValueSet seen;
    std::vector<Value> unique;
    for (Value& v : values) {
      if (seen.insert(v).second) unique.push_back(v);
    }
    values = std::move(unique);
  }
  const std::string& name = call->name;
  if (name == "count") {
    return Value::Int(static_cast<int64_t>(values.size()));
  }
  if (name == "collect") {
    return Value::List(std::move(values));
  }
  if (name == "sum") {
    bool all_int = true;
    double fsum = 0;
    int64_t isum = 0;
    for (const Value& v : values) {
      if (!v.is_number()) {
        return TypeError("sum() expects numeric values");
      }
      if (v.is_int()) {
        if (__builtin_add_overflow(isum, v.AsInt(), &isum)) {
          return TypeError("integer overflow in sum()");
        }
      } else {
        all_int = false;
      }
      fsum += v.AsNumber();
    }
    return all_int ? Value::Int(isum) : Value::Float(fsum);
  }
  if (name == "avg") {
    if (values.empty()) return Value::Null();
    double total = 0;
    for (const Value& v : values) {
      if (!v.is_number()) return TypeError("avg() expects numeric values");
      total += v.AsNumber();
    }
    return Value::Float(total / static_cast<double>(values.size()));
  }
  if (name == "min" || name == "max") {
    if (values.empty()) return Value::Null();
    const Value* best = &values[0];
    for (const Value& v : values) {
      int cmp = TotalOrderCompare(v, *best);
      if ((name == "min" && cmp < 0) || (name == "max" && cmp > 0)) best = &v;
    }
    return *best;
  }
  return TypeError("unknown aggregate: " + name);
}

}  // namespace

Result<Value> Evaluate(const EvalContext& ctx, const Bindings& bindings,
                       const Expr& expr, const AggregateScope* agg) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value;
    case ExprKind::kParameter: {
      const auto& e = static_cast<const ParameterExpr&>(expr);
      if (ctx.params != nullptr) {
        auto it = ctx.params->find(e.name);
        if (it != ctx.params->end()) return it->second;
      }
      return Status::ExecutionError("missing parameter: $" + e.name);
    }
    case ExprKind::kVariable: {
      const auto& e = static_cast<const VariableExpr&>(expr);
      std::optional<Value> v = bindings.Lookup(e.name);
      if (!v.has_value()) {
        return Status::SemanticError("undefined variable: " + e.name);
      }
      return *std::move(v);
    }
    case ExprKind::kProperty: {
      const auto& e = static_cast<const PropertyExpr&>(expr);
      CYPHER_ASSIGN_OR_RETURN(Value object, Evaluate(ctx, bindings, *e.object, agg));
      return EvalPropertyValue(ctx, object, e.key);
    }
    case ExprKind::kHasLabels: {
      const auto& e = static_cast<const HasLabelsExpr&>(expr);
      CYPHER_ASSIGN_OR_RETURN(Value object, Evaluate(ctx, bindings, *e.object, agg));
      return EvalHasLabelsValue(ctx, object, e.labels);
    }
    case ExprKind::kUnary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ctx, bindings, *e.operand, agg));
      return EvalUnaryValue(e.op, v);
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      // Logical connectives do not short-circuit structurally (ternary
      // logic needs both sides for null handling), but errors on either
      // side surface.
      CYPHER_ASSIGN_OR_RETURN(Value a, Evaluate(ctx, bindings, *e.left, agg));
      CYPHER_ASSIGN_OR_RETURN(Value b, Evaluate(ctx, bindings, *e.right, agg));
      return EvalBinaryValues(e.op, a, b);
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ctx, bindings, *e.operand, agg));
      bool is_null = v.is_null();
      return Value::Bool(e.negated ? !is_null : is_null);
    }
    case ExprKind::kList: {
      const auto& e = static_cast<const ListExpr&>(expr);
      ValueList items;
      items.reserve(e.items.size());
      for (const auto& item : e.items) {
        CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ctx, bindings, *item, agg));
        items.push_back(std::move(v));
      }
      return Value::List(std::move(items));
    }
    case ExprKind::kMap: {
      const auto& e = static_cast<const MapExpr&>(expr);
      ValueMap entries;
      for (const auto& [key, value] : e.entries) {
        CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ctx, bindings, *value, agg));
        entries[key] = std::move(v);
      }
      return Value::Map(std::move(entries));
    }
    case ExprKind::kIndex: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      CYPHER_ASSIGN_OR_RETURN(Value object, Evaluate(ctx, bindings, *e.object, agg));
      CYPHER_ASSIGN_OR_RETURN(Value index, Evaluate(ctx, bindings, *e.index, agg));
      return EvalIndexValue(object, index);
    }
    case ExprKind::kFunction: {
      const auto& e = static_cast<const FunctionExpr&>(expr);
      if (IsAggregateFunctionName(e.name)) {
        if (agg == nullptr) {
          return Status::SemanticError("aggregate function " + e.name +
                                       "() is not allowed here");
        }
        if (e.args.size() != 1) {
          return TypeError("aggregate " + e.name + "() expects 1 argument");
        }
        return EvaluateAggregateCall(ctx, &e, /*count_star=*/false, *agg);
      }
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& arg : e.args) {
        CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ctx, bindings, *arg, agg));
        args.push_back(std::move(v));
      }
      return EvalScalarFunction(ctx, e.name, std::move(args));
    }
    case ExprKind::kCountStar: {
      if (agg == nullptr) {
        return Status::SemanticError("count(*) is not allowed here");
      }
      return EvaluateAggregateCall(ctx, nullptr, /*count_star=*/true, *agg);
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(expr);
      for (const auto& [cond, value] : e.whens) {
        CYPHER_ASSIGN_OR_RETURN(Value c, Evaluate(ctx, bindings, *cond, agg));
        if (c.is_bool() && c.AsBool()) {
          return Evaluate(ctx, bindings, *value, agg);
        }
      }
      if (e.otherwise) return Evaluate(ctx, bindings, *e.otherwise, agg);
      return Value::Null();
    }
    case ExprKind::kListComprehension: {
      const auto& e = static_cast<const ListComprehensionExpr&>(expr);
      CYPHER_ASSIGN_OR_RETURN(Value list, Evaluate(ctx, bindings, *e.list, agg));
      if (list.is_null()) return Value::Null();
      if (!list.is_list()) {
        return TypeError("list comprehension expects a list");
      }
      Bindings scoped = bindings;
      ValueList out;
      for (const Value& element : list.AsList()) {
        scoped.Push(e.variable, element);
        bool keep = true;
        if (e.where != nullptr) {
          CYPHER_ASSIGN_OR_RETURN(Tri pass,
                                  EvaluatePredicate(ctx, scoped, *e.where));
          keep = pass == Tri::kTrue;
        }
        if (keep) {
          if (e.projection != nullptr) {
            CYPHER_ASSIGN_OR_RETURN(
                Value v, Evaluate(ctx, scoped, *e.projection, nullptr));
            out.push_back(std::move(v));
          } else {
            out.push_back(element);
          }
        }
        scoped.Pop();
      }
      return Value::List(std::move(out));
    }
    case ExprKind::kQuantifier: {
      const auto& e = static_cast<const QuantifierExpr&>(expr);
      CYPHER_ASSIGN_OR_RETURN(Value list, Evaluate(ctx, bindings, *e.list, agg));
      if (list.is_null()) return Value::Null();
      if (!list.is_list()) {
        return TypeError("quantifier expects a list");
      }
      Bindings scoped = bindings;
      size_t trues = 0;
      size_t falses = 0;
      size_t nulls = 0;
      for (const Value& element : list.AsList()) {
        scoped.Push(e.variable, element);
        CYPHER_ASSIGN_OR_RETURN(Tri t,
                                EvaluatePredicate(ctx, scoped, *e.predicate));
        scoped.Pop();
        switch (t) {
          case Tri::kTrue:
            ++trues;
            break;
          case Tri::kFalse:
            ++falses;
            break;
          case Tri::kNull:
            ++nulls;
            break;
        }
      }
      switch (e.quantifier) {
        case QuantifierKind::kAll:
          if (falses > 0) return Value::Bool(false);
          if (nulls > 0) return Value::Null();
          return Value::Bool(true);
        case QuantifierKind::kAny:
          if (trues > 0) return Value::Bool(true);
          if (nulls > 0) return Value::Null();
          return Value::Bool(false);
        case QuantifierKind::kNone:
          if (trues > 0) return Value::Bool(false);
          if (nulls > 0) return Value::Null();
          return Value::Bool(true);
        case QuantifierKind::kSingle:
          if (trues > 1) return Value::Bool(false);
          if (nulls > 0) return Value::Null();
          return Value::Bool(trues == 1);
      }
      return Value::Null();
    }
    case ExprKind::kReduce: {
      const auto& e = static_cast<const ReduceExpr&>(expr);
      CYPHER_ASSIGN_OR_RETURN(Value acc, Evaluate(ctx, bindings, *e.init, agg));
      CYPHER_ASSIGN_OR_RETURN(Value list, Evaluate(ctx, bindings, *e.list, agg));
      if (list.is_null()) return Value::Null();
      if (!list.is_list()) {
        return TypeError("reduce expects a list");
      }
      Bindings scoped = bindings;
      for (const Value& element : list.AsList()) {
        scoped.Push(e.accumulator, acc);
        scoped.Push(e.variable, element);
        CYPHER_ASSIGN_OR_RETURN(Value next,
                                Evaluate(ctx, scoped, *e.body, nullptr));
        scoped.Pop();
        scoped.Pop();
        acc = std::move(next);
      }
      return acc;
    }
    case ExprKind::kPatternPredicate: {
      const auto& e = static_cast<const PatternPredicateExpr&>(expr);
      std::vector<PathPattern> patterns;
      patterns.push_back(ClonePattern(e.pattern));
      CYPHER_ASSIGN_OR_RETURN(
          bool found,
          HasMatch(ctx, bindings, patterns, MatchOptions{ctx.match_mode}));
      return Value::Bool(found);
    }
    case ExprKind::kMapProjection: {
      const auto& e = static_cast<const MapProjectionExpr&>(expr);
      CYPHER_ASSIGN_OR_RETURN(Value subject,
                              Evaluate(ctx, bindings, *e.subject, agg));
      if (subject.is_null()) return Value::Null();
      const PropertyMap* props = nullptr;
      const ValueMap* map = nullptr;
      if (subject.is_node()) {
        props = &ctx.graph->node(subject.AsNode()).props;
      } else if (subject.is_rel()) {
        props = &ctx.graph->rel(subject.AsRel()).props;
      } else if (subject.is_map()) {
        map = &subject.AsMap();
      } else {
        return TypeError(
            "map projection applies to nodes, relationships and maps");
      }
      auto lookup = [&](const std::string& key) -> Value {
        if (props != nullptr) {
          Symbol sym = ctx.graph->FindKey(key);
          return sym == kNoSymbol ? Value() : props->Get(sym);
        }
        auto it = map->find(key);
        return it == map->end() ? Value() : it->second;
      };
      ValueMap out;
      for (const MapProjectionItem& item : e.items) {
        switch (item.kind) {
          case MapProjectionItem::Kind::kAll: {
            if (props != nullptr) {
              for (const auto& [key, value] : props->entries()) {
                out[ctx.graph->KeyName(key)] = value;
              }
            } else {
              for (const auto& [key, value] : *map) out[key] = value;
            }
            break;
          }
          case MapProjectionItem::Kind::kProperty:
            out[item.name] = lookup(item.name);
            break;
          case MapProjectionItem::Kind::kPair: {
            CYPHER_ASSIGN_OR_RETURN(Value v,
                                    Evaluate(ctx, bindings, *item.value, agg));
            out[item.name] = std::move(v);
            break;
          }
          case MapProjectionItem::Kind::kVariable: {
            std::optional<Value> v = bindings.Lookup(item.name);
            if (!v.has_value()) {
              return Status::SemanticError("undefined variable: " + item.name);
            }
            out[item.name] = *std::move(v);
            break;
          }
        }
      }
      return Value::Map(std::move(out));
    }
  }
  CYPHER_CHECK(false && "unreachable expression kind");
  return Value::Null();
}

Result<Tri> EvaluatePredicate(const EvalContext& ctx, const Bindings& bindings,
                              const Expr& expr) {
  CYPHER_ASSIGN_OR_RETURN(Value v, Evaluate(ctx, bindings, expr, nullptr));
  return PredicateTri(v);
}

}  // namespace cypher
