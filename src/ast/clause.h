#ifndef CYPHER_AST_CLAUSE_H_
#define CYPHER_AST_CLAUSE_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/expr.h"
#include "ast/pattern.h"

namespace cypher {

enum class ClauseKind {
  kMatch,
  kUnwind,
  kWith,
  kReturn,
  kCreate,
  kSet,
  kRemove,
  kDelete,
  kMerge,
  kForeach,
  kCreateIndex,
  kConstraint,
  kCallSubquery,
};

/// Base of all clause AST nodes.
struct Clause {
  explicit Clause(ClauseKind k) : kind(k) {}
  virtual ~Clause() = default;

  Clause(const Clause&) = delete;
  Clause& operator=(const Clause&) = delete;

  const ClauseKind kind;
};

using ClausePtr = std::unique_ptr<Clause>;

/// True for CREATE/SET/REMOVE/DELETE/MERGE/FOREACH.
bool IsUpdateClause(const Clause& clause);

/// Deep copy of a clause tree (including FOREACH / CALL bodies). The copy
/// shares nothing with the source; rewrite passes mutate copies freely.
ClausePtr CloneClause(const Clause& clause);

/// MATCH / OPTIONAL MATCH with an optional WHERE filter.
struct MatchClause : Clause {
  MatchClause() : Clause(ClauseKind::kMatch) {}
  bool optional = false;
  std::vector<PathPattern> patterns;
  ExprPtr where;  // may be null
};

/// UNWIND list AS var.
struct UnwindClause : Clause {
  UnwindClause() : Clause(ClauseKind::kUnwind) {}
  ExprPtr list;
  std::string variable;
};

/// One projection item `expr AS alias` (alias always resolved by parser).
struct ReturnItem {
  ExprPtr expr;
  std::string alias;
};

struct SortItem {
  ExprPtr expr;
  bool ascending = true;
};

/// Shared body of WITH and RETURN.
struct ProjectionBody {
  bool distinct = false;
  bool include_existing = false;  // `*`
  std::vector<ReturnItem> items;
  std::vector<SortItem> order_by;
  ExprPtr skip;   // may be null
  ExprPtr limit;  // may be null
};

struct WithClause : Clause {
  WithClause() : Clause(ClauseKind::kWith) {}
  ProjectionBody body;
  ExprPtr where;  // may be null
};

struct ReturnClause : Clause {
  ReturnClause() : Clause(ClauseKind::kReturn) {}
  ProjectionBody body;
};

struct CreateClause : Clause {
  CreateClause() : Clause(ClauseKind::kCreate) {}
  std::vector<PathPattern> patterns;
};

/// The three set-item shapes of Figure 4 plus the label form:
///   kSetProperty:   expr.key = expr
///   kReplaceProps:  var = expr        (expr evaluates to a map)
///   kMergeProps:    var += expr       (expr evaluates to a map)
///   kSetLabels:     var:Label1:Label2
enum class SetItemKind { kSetProperty, kReplaceProps, kMergeProps, kSetLabels };

struct SetItem {
  SetItemKind kind;
  ExprPtr target;                   // entity expression
  std::string key;                  // kSetProperty only
  ExprPtr value;                    // not for kSetLabels
  std::vector<std::string> labels;  // kSetLabels only
};

struct SetClause : Clause {
  SetClause() : Clause(ClauseKind::kSet) {}
  std::vector<SetItem> items;
};

enum class RemoveItemKind { kProperty, kLabels };

struct RemoveItem {
  RemoveItemKind kind;
  ExprPtr target;
  std::string key;                  // kProperty only
  std::vector<std::string> labels;  // kLabels only
};

struct RemoveClause : Clause {
  RemoveClause() : Clause(ClauseKind::kRemove) {}
  std::vector<RemoveItem> items;
};

/// DELETE / DETACH DELETE expr, ...
struct DeleteClause : Clause {
  DeleteClause() : Clause(ClauseKind::kDelete) {}
  bool detach = false;
  std::vector<ExprPtr> exprs;
};

/// Which MERGE the query wrote (paper Sections 3, 7):
///  * kLegacy — Cypher 9 `MERGE`, record-at-a-time match-or-create, reads
///    its own writes (the problematic one, Section 4.3);
///  * kAll — revised `MERGE ALL`, Atomic semantics;
///  * kSame — revised `MERGE SAME`, Strong Collapse semantics.
enum class MergeForm { kLegacy, kAll, kSame };

struct MergeClause : Clause {
  MergeClause() : Clause(ClauseKind::kMerge) {}
  MergeForm form = MergeForm::kLegacy;
  /// kLegacy allows exactly one pattern (Figure 3); kAll/kSame allow a
  /// tuple (Figure 10).
  std::vector<PathPattern> patterns;
  /// Cypher 9 `ON CREATE SET` / `ON MATCH SET` sub-clauses (legacy only).
  std::vector<SetItem> on_create;
  std::vector<SetItem> on_match;
};

/// CREATE INDEX ON :Label(key) / DROP INDEX ON :Label(key) — DDL; a hash
/// index used by MATCH and MERGE for (label {key: value}) lookups.
/// Idempotent in both directions.
struct CreateIndexClause : Clause {
  CreateIndexClause() : Clause(ClauseKind::kCreateIndex) {}
  bool drop = false;
  std::string label;
  std::string key;
};

/// CREATE/DROP CONSTRAINT ON (n:Label) ASSERT n.key IS UNIQUE — declares
/// that no two alive nodes with `label` share a (non-null) value for `key`.
/// Creation validates existing data; afterwards every statement is checked
/// before commit and rolled back wholesale on violation.
struct ConstraintClause : Clause {
  ConstraintClause() : Clause(ClauseKind::kConstraint) {}
  bool drop = false;
  std::string label;
  std::string key;
};

/// FOREACH (var IN list | update-clauses).
struct ForeachClause : Clause {
  ForeachClause() : Clause(ClauseKind::kForeach) {}
  std::string variable;
  ExprPtr list;
  std::vector<ClausePtr> body;  // update clauses only (checked semantically)
};

/// CALL { <clauses> } — a correlated subquery executed once per driving
/// record. The subquery sees the outer record's variables; if it ends in
/// RETURN, its rows join onto the record (aliases must be fresh), otherwise
/// it runs for its side effects and the record passes through unchanged.
struct CallSubqueryClause : Clause {
  CallSubqueryClause() : Clause(ClauseKind::kCallSubquery) {}
  std::vector<ClausePtr> body;
};

}  // namespace cypher

#endif  // CYPHER_AST_CLAUSE_H_
