#ifndef CYPHER_AST_QUERY_H_
#define CYPHER_AST_QUERY_H_

#include <vector>

#include "ast/clause.h"

namespace cypher {

/// One UNION-free clause sequence.
struct SingleQuery {
  std::vector<ClausePtr> clauses;
};

/// Execution mode prefix: EXPLAIN describes the plan without executing;
/// PROFILE executes and reports per-clause driving-table cardinalities.
enum class QueryMode { kNormal, kExplain, kProfile };

/// A full statement: one or more single queries combined with UNION [ALL].
/// Updates in unions are applied left-to-right as side effects, tables are
/// unioned (Section 8, "Composition of clauses").
struct Query {
  QueryMode mode = QueryMode::kNormal;
  std::vector<SingleQuery> parts;  // size >= 1
  /// union_all[i] is true when parts[i] and parts[i+1] are joined by
  /// UNION ALL, false for plain UNION (distinct).
  std::vector<bool> union_all;
};

/// Deep copies (clauses own expression and pattern trees).
SingleQuery CloneSingleQuery(const SingleQuery& query);
Query CloneQuery(const Query& query);

}  // namespace cypher

#endif  // CYPHER_AST_QUERY_H_
