#ifndef CYPHER_AST_PRINTER_H_
#define CYPHER_AST_PRINTER_H_

#include <string>

#include "ast/query.h"

namespace cypher {

/// Renders AST back to canonical Cypher text. Round-trip property:
/// Parse(ToCypher(Parse(q))) produces the same tree as Parse(q) (tested in
/// tests/parser_test.cc).
std::string ToCypher(const Expr& expr);
std::string ToCypher(const PathPattern& pattern);
std::string ToCypher(const Clause& clause);
std::string ToCypher(const Query& query);

}  // namespace cypher

#endif  // CYPHER_AST_PRINTER_H_
