#include <memory>

#include "ast/clause.h"
#include "ast/expr.h"
#include "ast/pattern.h"
#include "ast/query.h"
#include "common/check.h"

namespace cypher {

bool IsAggregateFunctionName(const std::string& name) {
  return name == "count" || name == "collect" || name == "sum" ||
         name == "avg" || name == "min" || name == "max";
}

bool ContainsAggregate(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
    case ExprKind::kVariable:
      return false;
    case ExprKind::kProperty:
      return ContainsAggregate(*static_cast<const PropertyExpr&>(expr).object);
    case ExprKind::kHasLabels:
      return ContainsAggregate(*static_cast<const HasLabelsExpr&>(expr).object);
    case ExprKind::kUnary:
      return ContainsAggregate(*static_cast<const UnaryExpr&>(expr).operand);
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      return ContainsAggregate(*e.left) || ContainsAggregate(*e.right);
    }
    case ExprKind::kIsNull:
      return ContainsAggregate(*static_cast<const IsNullExpr&>(expr).operand);
    case ExprKind::kList: {
      for (const auto& item : static_cast<const ListExpr&>(expr).items) {
        if (ContainsAggregate(*item)) return true;
      }
      return false;
    }
    case ExprKind::kMap: {
      for (const auto& [key, value] : static_cast<const MapExpr&>(expr).entries) {
        if (ContainsAggregate(*value)) return true;
      }
      return false;
    }
    case ExprKind::kIndex: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      return ContainsAggregate(*e.object) || ContainsAggregate(*e.index);
    }
    case ExprKind::kFunction: {
      const auto& e = static_cast<const FunctionExpr&>(expr);
      if (IsAggregateFunctionName(e.name)) return true;
      for (const auto& arg : e.args) {
        if (ContainsAggregate(*arg)) return true;
      }
      return false;
    }
    case ExprKind::kCountStar:
      return true;
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(expr);
      for (const auto& [cond, value] : e.whens) {
        if (ContainsAggregate(*cond) || ContainsAggregate(*value)) return true;
      }
      return e.otherwise && ContainsAggregate(*e.otherwise);
    }
    case ExprKind::kListComprehension: {
      const auto& e = static_cast<const ListComprehensionExpr&>(expr);
      return ContainsAggregate(*e.list) ||
             (e.where && ContainsAggregate(*e.where)) ||
             (e.projection && ContainsAggregate(*e.projection));
    }
    case ExprKind::kQuantifier: {
      const auto& e = static_cast<const QuantifierExpr&>(expr);
      return ContainsAggregate(*e.list) || ContainsAggregate(*e.predicate);
    }
    case ExprKind::kReduce: {
      const auto& e = static_cast<const ReduceExpr&>(expr);
      return ContainsAggregate(*e.init) || ContainsAggregate(*e.list) ||
             ContainsAggregate(*e.body);
    }
    case ExprKind::kPatternPredicate:
      return false;  // pattern property expressions cannot aggregate
    case ExprKind::kMapProjection: {
      const auto& e = static_cast<const MapProjectionExpr&>(expr);
      if (ContainsAggregate(*e.subject)) return true;
      for (const MapProjectionItem& item : e.items) {
        if (item.value && ContainsAggregate(*item.value)) return true;
      }
      return false;
    }
  }
  return false;
}

ExprPtr CloneExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return std::make_unique<LiteralExpr>(
          static_cast<const LiteralExpr&>(expr).value);
    case ExprKind::kParameter:
      return std::make_unique<ParameterExpr>(
          static_cast<const ParameterExpr&>(expr).name);
    case ExprKind::kVariable:
      return std::make_unique<VariableExpr>(
          static_cast<const VariableExpr&>(expr).name);
    case ExprKind::kProperty: {
      const auto& e = static_cast<const PropertyExpr&>(expr);
      return std::make_unique<PropertyExpr>(CloneExpr(*e.object), e.key);
    }
    case ExprKind::kHasLabels: {
      const auto& e = static_cast<const HasLabelsExpr&>(expr);
      return std::make_unique<HasLabelsExpr>(CloneExpr(*e.object), e.labels);
    }
    case ExprKind::kUnary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      return std::make_unique<UnaryExpr>(e.op, CloneExpr(*e.operand));
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      return std::make_unique<BinaryExpr>(e.op, CloneExpr(*e.left),
                                          CloneExpr(*e.right));
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      return std::make_unique<IsNullExpr>(CloneExpr(*e.operand), e.negated);
    }
    case ExprKind::kList: {
      const auto& e = static_cast<const ListExpr&>(expr);
      std::vector<ExprPtr> items;
      items.reserve(e.items.size());
      for (const auto& item : e.items) items.push_back(CloneExpr(*item));
      return std::make_unique<ListExpr>(std::move(items));
    }
    case ExprKind::kMap: {
      const auto& e = static_cast<const MapExpr&>(expr);
      std::vector<std::pair<std::string, ExprPtr>> entries;
      entries.reserve(e.entries.size());
      for (const auto& [key, value] : e.entries) {
        entries.emplace_back(key, CloneExpr(*value));
      }
      return std::make_unique<MapExpr>(std::move(entries));
    }
    case ExprKind::kIndex: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      return std::make_unique<IndexExpr>(CloneExpr(*e.object),
                                         CloneExpr(*e.index));
    }
    case ExprKind::kFunction: {
      const auto& e = static_cast<const FunctionExpr&>(expr);
      std::vector<ExprPtr> args;
      args.reserve(e.args.size());
      for (const auto& arg : e.args) args.push_back(CloneExpr(*arg));
      return std::make_unique<FunctionExpr>(e.name, e.distinct, std::move(args));
    }
    case ExprKind::kCountStar:
      return std::make_unique<CountStarExpr>();
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(expr);
      std::vector<std::pair<ExprPtr, ExprPtr>> whens;
      whens.reserve(e.whens.size());
      for (const auto& [cond, value] : e.whens) {
        whens.emplace_back(CloneExpr(*cond), CloneExpr(*value));
      }
      return std::make_unique<CaseExpr>(
          std::move(whens), e.otherwise ? CloneExpr(*e.otherwise) : nullptr);
    }
    case ExprKind::kListComprehension: {
      const auto& e = static_cast<const ListComprehensionExpr&>(expr);
      return std::make_unique<ListComprehensionExpr>(
          e.variable, CloneExpr(*e.list),
          e.where ? CloneExpr(*e.where) : nullptr,
          e.projection ? CloneExpr(*e.projection) : nullptr);
    }
    case ExprKind::kQuantifier: {
      const auto& e = static_cast<const QuantifierExpr&>(expr);
      return std::make_unique<QuantifierExpr>(e.quantifier, e.variable,
                                              CloneExpr(*e.list),
                                              CloneExpr(*e.predicate));
    }
    case ExprKind::kReduce: {
      const auto& e = static_cast<const ReduceExpr&>(expr);
      return std::make_unique<ReduceExpr>(e.accumulator, CloneExpr(*e.init),
                                          e.variable, CloneExpr(*e.list),
                                          CloneExpr(*e.body));
    }
    case ExprKind::kPatternPredicate: {
      const auto& e = static_cast<const PatternPredicateExpr&>(expr);
      return std::make_unique<PatternPredicateExpr>(ClonePattern(e.pattern));
    }
    case ExprKind::kMapProjection: {
      const auto& e = static_cast<const MapProjectionExpr&>(expr);
      std::vector<MapProjectionItem> items;
      items.reserve(e.items.size());
      for (const MapProjectionItem& item : e.items) {
        items.push_back(
            {item.kind, item.name,
             item.value ? CloneExpr(*item.value) : nullptr});
      }
      return std::make_unique<MapProjectionExpr>(CloneExpr(*e.subject),
                                                 std::move(items));
    }
  }
  CYPHER_CHECK(false && "unreachable expression kind");
  return nullptr;
}

namespace {

std::vector<std::pair<std::string, ExprPtr>> CloneProps(
    const std::vector<std::pair<std::string, ExprPtr>>& props) {
  std::vector<std::pair<std::string, ExprPtr>> out;
  out.reserve(props.size());
  for (const auto& [key, value] : props) {
    out.emplace_back(key, CloneExpr(*value));
  }
  return out;
}

}  // namespace

NodePattern ClonePattern(const NodePattern& pattern) {
  NodePattern out;
  out.variable = pattern.variable;
  out.labels = pattern.labels;
  out.properties = CloneProps(pattern.properties);
  return out;
}

RelPattern ClonePattern(const RelPattern& pattern) {
  RelPattern out;
  out.variable = pattern.variable;
  out.types = pattern.types;
  out.direction = pattern.direction;
  out.properties = CloneProps(pattern.properties);
  out.var_length = pattern.var_length;
  out.min_hops = pattern.min_hops;
  out.max_hops = pattern.max_hops;
  return out;
}

PathPattern ClonePattern(const PathPattern& pattern) {
  PathPattern out;
  out.path_variable = pattern.path_variable;
  out.function = pattern.function;
  out.start = ClonePattern(pattern.start);
  out.steps.reserve(pattern.steps.size());
  for (const auto& [rel, node] : pattern.steps) {
    out.steps.emplace_back(ClonePattern(rel), ClonePattern(node));
  }
  return out;
}

std::vector<std::string> PatternVariables(const PathPattern& pattern) {
  std::vector<std::string> out;
  if (!pattern.path_variable.empty()) out.push_back(pattern.path_variable);
  if (!pattern.start.variable.empty()) out.push_back(pattern.start.variable);
  for (const auto& [rel, node] : pattern.steps) {
    if (!rel.variable.empty()) out.push_back(rel.variable);
    if (!node.variable.empty()) out.push_back(node.variable);
  }
  return out;
}

bool IsUpdateClause(const Clause& clause) {
  switch (clause.kind) {
    case ClauseKind::kCreate:
    case ClauseKind::kSet:
    case ClauseKind::kRemove:
    case ClauseKind::kDelete:
    case ClauseKind::kMerge:
    case ClauseKind::kForeach:
      return true;
    default:
      return false;
  }
}

namespace {

std::vector<PathPattern> ClonePatterns(const std::vector<PathPattern>& in) {
  std::vector<PathPattern> out;
  out.reserve(in.size());
  for (const PathPattern& p : in) out.push_back(ClonePattern(p));
  return out;
}

SetItem CloneSetItem(const SetItem& item) {
  SetItem out;
  out.kind = item.kind;
  out.target = CloneExpr(*item.target);
  out.key = item.key;
  out.value = item.value ? CloneExpr(*item.value) : nullptr;
  out.labels = item.labels;
  return out;
}

std::vector<SetItem> CloneSetItems(const std::vector<SetItem>& in) {
  std::vector<SetItem> out;
  out.reserve(in.size());
  for (const SetItem& item : in) out.push_back(CloneSetItem(item));
  return out;
}

ProjectionBody CloneProjectionBody(const ProjectionBody& body) {
  ProjectionBody out;
  out.distinct = body.distinct;
  out.include_existing = body.include_existing;
  out.items.reserve(body.items.size());
  for (const ReturnItem& item : body.items) {
    out.items.push_back({CloneExpr(*item.expr), item.alias});
  }
  out.order_by.reserve(body.order_by.size());
  for (const SortItem& item : body.order_by) {
    out.order_by.push_back({CloneExpr(*item.expr), item.ascending});
  }
  out.skip = body.skip ? CloneExpr(*body.skip) : nullptr;
  out.limit = body.limit ? CloneExpr(*body.limit) : nullptr;
  return out;
}

std::vector<ClausePtr> CloneClauses(const std::vector<ClausePtr>& in) {
  std::vector<ClausePtr> out;
  out.reserve(in.size());
  for (const ClausePtr& clause : in) out.push_back(CloneClause(*clause));
  return out;
}

}  // namespace

ClausePtr CloneClause(const Clause& clause) {
  switch (clause.kind) {
    case ClauseKind::kMatch: {
      const auto& c = static_cast<const MatchClause&>(clause);
      auto out = std::make_unique<MatchClause>();
      out->optional = c.optional;
      out->patterns = ClonePatterns(c.patterns);
      out->where = c.where ? CloneExpr(*c.where) : nullptr;
      return out;
    }
    case ClauseKind::kUnwind: {
      const auto& c = static_cast<const UnwindClause&>(clause);
      auto out = std::make_unique<UnwindClause>();
      out->list = CloneExpr(*c.list);
      out->variable = c.variable;
      return out;
    }
    case ClauseKind::kWith: {
      const auto& c = static_cast<const WithClause&>(clause);
      auto out = std::make_unique<WithClause>();
      out->body = CloneProjectionBody(c.body);
      out->where = c.where ? CloneExpr(*c.where) : nullptr;
      return out;
    }
    case ClauseKind::kReturn: {
      const auto& c = static_cast<const ReturnClause&>(clause);
      auto out = std::make_unique<ReturnClause>();
      out->body = CloneProjectionBody(c.body);
      return out;
    }
    case ClauseKind::kCreate: {
      const auto& c = static_cast<const CreateClause&>(clause);
      auto out = std::make_unique<CreateClause>();
      out->patterns = ClonePatterns(c.patterns);
      return out;
    }
    case ClauseKind::kSet: {
      const auto& c = static_cast<const SetClause&>(clause);
      auto out = std::make_unique<SetClause>();
      out->items = CloneSetItems(c.items);
      return out;
    }
    case ClauseKind::kRemove: {
      const auto& c = static_cast<const RemoveClause&>(clause);
      auto out = std::make_unique<RemoveClause>();
      out->items.reserve(c.items.size());
      for (const RemoveItem& item : c.items) {
        RemoveItem copy;
        copy.kind = item.kind;
        copy.target = CloneExpr(*item.target);
        copy.key = item.key;
        copy.labels = item.labels;
        out->items.push_back(std::move(copy));
      }
      return out;
    }
    case ClauseKind::kDelete: {
      const auto& c = static_cast<const DeleteClause&>(clause);
      auto out = std::make_unique<DeleteClause>();
      out->detach = c.detach;
      out->exprs.reserve(c.exprs.size());
      for (const ExprPtr& e : c.exprs) out->exprs.push_back(CloneExpr(*e));
      return out;
    }
    case ClauseKind::kMerge: {
      const auto& c = static_cast<const MergeClause&>(clause);
      auto out = std::make_unique<MergeClause>();
      out->form = c.form;
      out->patterns = ClonePatterns(c.patterns);
      out->on_create = CloneSetItems(c.on_create);
      out->on_match = CloneSetItems(c.on_match);
      return out;
    }
    case ClauseKind::kForeach: {
      const auto& c = static_cast<const ForeachClause&>(clause);
      auto out = std::make_unique<ForeachClause>();
      out->variable = c.variable;
      out->list = CloneExpr(*c.list);
      out->body = CloneClauses(c.body);
      return out;
    }
    case ClauseKind::kCreateIndex: {
      const auto& c = static_cast<const CreateIndexClause&>(clause);
      auto out = std::make_unique<CreateIndexClause>();
      out->drop = c.drop;
      out->label = c.label;
      out->key = c.key;
      return out;
    }
    case ClauseKind::kConstraint: {
      const auto& c = static_cast<const ConstraintClause&>(clause);
      auto out = std::make_unique<ConstraintClause>();
      out->drop = c.drop;
      out->label = c.label;
      out->key = c.key;
      return out;
    }
    case ClauseKind::kCallSubquery: {
      const auto& c = static_cast<const CallSubqueryClause&>(clause);
      auto out = std::make_unique<CallSubqueryClause>();
      out->body = CloneClauses(c.body);
      return out;
    }
  }
  CYPHER_CHECK(false && "unreachable clause kind");
  return nullptr;
}

SingleQuery CloneSingleQuery(const SingleQuery& query) {
  SingleQuery out;
  out.clauses = CloneClauses(query.clauses);
  return out;
}

Query CloneQuery(const Query& query) {
  Query out;
  out.mode = query.mode;
  out.parts.reserve(query.parts.size());
  for (const SingleQuery& part : query.parts) {
    out.parts.push_back(CloneSingleQuery(part));
  }
  out.union_all = query.union_all;
  return out;
}

}  // namespace cypher
