#ifndef CYPHER_AST_PATTERN_H_
#define CYPHER_AST_PATTERN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ast/expr.h"

namespace cypher {

/// `(v:Label1:Label2 {key: expr, ...})`. In MATCH/MERGE the property map is
/// a filter; in CREATE (and the writing part of MERGE) it is an assignment.
struct NodePattern {
  std::string variable;  // empty = anonymous
  std::vector<std::string> labels;
  std::vector<std::pair<std::string, ExprPtr>> properties;
};

/// Relationship arrow direction as written in the pattern.
enum class RelDirection {
  kLeftToRight,  // -[...]->
  kRightToLeft,  // <-[...]-
  kUndirected,   // -[...]-
};

/// `-[v:TYPE|TYPE2 {k: e} *min..max]->`.
///
/// MATCH allows multiple alternative types, undirected arrows, omitted
/// types, and variable length. CREATE (and revised MERGE, Figure 10)
/// requires exactly one type, a direction, and fixed length — enforced by
/// semantic checks, not the grammar.
struct RelPattern {
  std::string variable;  // empty = anonymous
  std::vector<std::string> types;
  RelDirection direction = RelDirection::kUndirected;
  std::vector<std::pair<std::string, ExprPtr>> properties;
  bool var_length = false;
  int64_t min_hops = 1;
  int64_t max_hops = 1;  // -1 = unbounded (only when var_length)
};

/// Path-function wrapper: `shortestPath((a)-[:T*]->(b))` /
/// `allShortestPaths(...)`. kNone is a plain pattern.
enum class PathFunction { kNone, kShortest, kAllShortest };

/// `p = (a)-[r]->(b)-[s]->(c)`: a node followed by (rel, node) steps.
struct PathPattern {
  std::string path_variable;  // empty = unnamed
  PathFunction function = PathFunction::kNone;
  NodePattern start;
  std::vector<std::pair<RelPattern, NodePattern>> steps;
};

/// `exists((n)-[:T]->(:Label))` — an existential pattern predicate: true
/// when the pattern matches at least once given the current bindings.
/// Defined here (not expr.h) because it embeds a PathPattern.
struct PatternPredicateExpr : Expr {
  explicit PatternPredicateExpr(PathPattern p)
      : Expr(ExprKind::kPatternPredicate), pattern(std::move(p)) {}
  PathPattern pattern;
};

/// Deep copies (patterns own expression trees).
NodePattern ClonePattern(const NodePattern& pattern);
RelPattern ClonePattern(const RelPattern& pattern);
PathPattern ClonePattern(const PathPattern& pattern);

/// All variable names appearing in the pattern (path, node and rel
/// variables), in syntactic order, with duplicates preserved.
std::vector<std::string> PatternVariables(const PathPattern& pattern);

}  // namespace cypher

#endif  // CYPHER_AST_PATTERN_H_
