#include "ast/printer.h"

#include "common/check.h"

namespace cypher {

namespace {

const char* BinaryOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kXor:
      return "XOR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kPow:
      return "^";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kIn:
      return "IN";
    case BinaryOp::kStartsWith:
      return "STARTS WITH";
    case BinaryOp::kEndsWith:
      return "ENDS WITH";
    case BinaryOp::kContains:
      return "CONTAINS";
  }
  return "?";
}

std::string PropsText(
    const std::vector<std::pair<std::string, ExprPtr>>& props) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : props) {
    if (!first) out += ", ";
    first = false;
    out += key + ": " + ToCypher(*value);
  }
  out += "}";
  return out;
}

std::string NodeText(const NodePattern& node) {
  std::string out = "(" + node.variable;
  for (const auto& label : node.labels) out += ":" + label;
  if (!node.properties.empty()) {
    if (out.size() > 1) out += " ";
    out += PropsText(node.properties);
  }
  out += ")";
  return out;
}

std::string RelText(const RelPattern& rel) {
  std::string body = rel.variable;
  for (size_t i = 0; i < rel.types.size(); ++i) {
    body += (i == 0 ? ":" : "|") + rel.types[i];
  }
  if (rel.var_length) {
    body += "*";
    if (rel.min_hops != 1 || rel.max_hops != -1) {
      body += std::to_string(rel.min_hops) + "..";
      if (rel.max_hops >= 0) body += std::to_string(rel.max_hops);
    }
  }
  if (!rel.properties.empty()) {
    if (!body.empty()) body += " ";
    body += PropsText(rel.properties);
  }
  std::string arrow = body.empty() ? "" : "[" + body + "]";
  switch (rel.direction) {
    case RelDirection::kLeftToRight:
      return "-" + arrow + "->";
    case RelDirection::kRightToLeft:
      return "<-" + arrow + "-";
    case RelDirection::kUndirected:
      return "-" + arrow + "-";
  }
  return "?";
}

std::string SetItemText(const SetItem& item) {
  switch (item.kind) {
    case SetItemKind::kSetProperty:
      return ToCypher(*item.target) + "." + item.key + " = " +
             ToCypher(*item.value);
    case SetItemKind::kReplaceProps:
      return ToCypher(*item.target) + " = " + ToCypher(*item.value);
    case SetItemKind::kMergeProps:
      return ToCypher(*item.target) + " += " + ToCypher(*item.value);
    case SetItemKind::kSetLabels: {
      std::string out = ToCypher(*item.target);
      for (const auto& label : item.labels) out += ":" + label;
      return out;
    }
  }
  return "?";
}

std::string ProjectionText(const ProjectionBody& body) {
  std::string out;
  if (body.distinct) out += "DISTINCT ";
  bool first = true;
  if (body.include_existing) {
    out += "*";
    first = false;
  }
  for (const auto& item : body.items) {
    if (!first) out += ", ";
    first = false;
    out += ToCypher(*item.expr) + " AS " + item.alias;
  }
  if (!body.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < body.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToCypher(*body.order_by[i].expr);
      out += body.order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  if (body.skip) out += " SKIP " + ToCypher(*body.skip);
  if (body.limit) out += " LIMIT " + ToCypher(*body.limit);
  return out;
}

}  // namespace

std::string ToCypher(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value.ToString();
    case ExprKind::kParameter:
      return "$" + static_cast<const ParameterExpr&>(expr).name;
    case ExprKind::kVariable:
      return static_cast<const VariableExpr&>(expr).name;
    case ExprKind::kProperty: {
      const auto& e = static_cast<const PropertyExpr&>(expr);
      return ToCypher(*e.object) + "." + e.key;
    }
    case ExprKind::kHasLabels: {
      const auto& e = static_cast<const HasLabelsExpr&>(expr);
      std::string out = ToCypher(*e.object);
      for (const auto& label : e.labels) out += ":" + label;
      return out;
    }
    case ExprKind::kUnary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      switch (e.op) {
        case UnaryOp::kNot:
          return "(NOT " + ToCypher(*e.operand) + ")";
        case UnaryOp::kMinus:
          return "(-" + ToCypher(*e.operand) + ")";
        case UnaryOp::kPlus:
          return "(+" + ToCypher(*e.operand) + ")";
      }
      return "?";
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      return "(" + ToCypher(*e.left) + " " + BinaryOpText(e.op) + " " +
             ToCypher(*e.right) + ")";
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      return "(" + ToCypher(*e.operand) +
             (e.negated ? " IS NOT NULL)" : " IS NULL)");
    }
    case ExprKind::kList: {
      const auto& e = static_cast<const ListExpr&>(expr);
      std::string out = "[";
      for (size_t i = 0; i < e.items.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToCypher(*e.items[i]);
      }
      return out + "]";
    }
    case ExprKind::kMap: {
      const auto& e = static_cast<const MapExpr&>(expr);
      std::string out = "{";
      for (size_t i = 0; i < e.entries.size(); ++i) {
        if (i > 0) out += ", ";
        out += e.entries[i].first + ": " + ToCypher(*e.entries[i].second);
      }
      return out + "}";
    }
    case ExprKind::kIndex: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      return ToCypher(*e.object) + "[" + ToCypher(*e.index) + "]";
    }
    case ExprKind::kFunction: {
      const auto& e = static_cast<const FunctionExpr&>(expr);
      std::string out = e.name + "(";
      if (e.distinct) out += "DISTINCT ";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToCypher(*e.args[i]);
      }
      return out + ")";
    }
    case ExprKind::kCountStar:
      return "count(*)";
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(expr);
      std::string out = "CASE";
      for (const auto& [cond, value] : e.whens) {
        out += " WHEN " + ToCypher(*cond) + " THEN " + ToCypher(*value);
      }
      if (e.otherwise) out += " ELSE " + ToCypher(*e.otherwise);
      return out + " END";
    }
    case ExprKind::kListComprehension: {
      const auto& e = static_cast<const ListComprehensionExpr&>(expr);
      std::string out = "[" + e.variable + " IN " + ToCypher(*e.list);
      if (e.where) out += " WHERE " + ToCypher(*e.where);
      if (e.projection) out += " | " + ToCypher(*e.projection);
      return out + "]";
    }
    case ExprKind::kQuantifier: {
      const auto& e = static_cast<const QuantifierExpr&>(expr);
      const char* name = "?";
      switch (e.quantifier) {
        case QuantifierKind::kAll:
          name = "all";
          break;
        case QuantifierKind::kAny:
          name = "any";
          break;
        case QuantifierKind::kNone:
          name = "none";
          break;
        case QuantifierKind::kSingle:
          name = "single";
          break;
      }
      return std::string(name) + "(" + e.variable + " IN " +
             ToCypher(*e.list) + " WHERE " + ToCypher(*e.predicate) + ")";
    }
    case ExprKind::kReduce: {
      const auto& e = static_cast<const ReduceExpr&>(expr);
      return "reduce(" + e.accumulator + " = " + ToCypher(*e.init) + ", " +
             e.variable + " IN " + ToCypher(*e.list) + " | " +
             ToCypher(*e.body) + ")";
    }
    case ExprKind::kPatternPredicate: {
      const auto& e = static_cast<const PatternPredicateExpr&>(expr);
      return "exists(" + ToCypher(e.pattern) + ")";
    }
    case ExprKind::kMapProjection: {
      const auto& e = static_cast<const MapProjectionExpr&>(expr);
      std::string out = ToCypher(*e.subject) + " {";
      for (size_t i = 0; i < e.items.size(); ++i) {
        if (i > 0) out += ", ";
        const MapProjectionItem& item = e.items[i];
        switch (item.kind) {
          case MapProjectionItem::Kind::kProperty:
            out += "." + item.name;
            break;
          case MapProjectionItem::Kind::kPair:
            out += item.name + ": " + ToCypher(*item.value);
            break;
          case MapProjectionItem::Kind::kVariable:
            out += item.name;
            break;
          case MapProjectionItem::Kind::kAll:
            out += ".*";
            break;
        }
      }
      return out + "}";
    }
  }
  return "?";
}

std::string ToCypher(const PathPattern& pattern) {
  std::string out;
  if (!pattern.path_variable.empty()) out += pattern.path_variable + " = ";
  if (pattern.function == PathFunction::kShortest) out += "shortestPath(";
  if (pattern.function == PathFunction::kAllShortest) {
    out += "allShortestPaths(";
  }
  out += NodeText(pattern.start);
  for (const auto& [rel, node] : pattern.steps) {
    out += RelText(rel) + NodeText(node);
  }
  if (pattern.function != PathFunction::kNone) out += ")";
  return out;
}

std::string ToCypher(const Clause& clause) {
  switch (clause.kind) {
    case ClauseKind::kMatch: {
      const auto& c = static_cast<const MatchClause&>(clause);
      std::string out = c.optional ? "OPTIONAL MATCH " : "MATCH ";
      for (size_t i = 0; i < c.patterns.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToCypher(c.patterns[i]);
      }
      if (c.where) out += " WHERE " + ToCypher(*c.where);
      return out;
    }
    case ClauseKind::kUnwind: {
      const auto& c = static_cast<const UnwindClause&>(clause);
      return "UNWIND " + ToCypher(*c.list) + " AS " + c.variable;
    }
    case ClauseKind::kWith: {
      const auto& c = static_cast<const WithClause&>(clause);
      std::string out = "WITH " + ProjectionText(c.body);
      if (c.where) out += " WHERE " + ToCypher(*c.where);
      return out;
    }
    case ClauseKind::kReturn: {
      const auto& c = static_cast<const ReturnClause&>(clause);
      return "RETURN " + ProjectionText(c.body);
    }
    case ClauseKind::kCreate: {
      const auto& c = static_cast<const CreateClause&>(clause);
      std::string out = "CREATE ";
      for (size_t i = 0; i < c.patterns.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToCypher(c.patterns[i]);
      }
      return out;
    }
    case ClauseKind::kSet: {
      const auto& c = static_cast<const SetClause&>(clause);
      std::string out = "SET ";
      for (size_t i = 0; i < c.items.size(); ++i) {
        if (i > 0) out += ", ";
        out += SetItemText(c.items[i]);
      }
      return out;
    }
    case ClauseKind::kRemove: {
      const auto& c = static_cast<const RemoveClause&>(clause);
      std::string out = "REMOVE ";
      for (size_t i = 0; i < c.items.size(); ++i) {
        if (i > 0) out += ", ";
        const RemoveItem& item = c.items[i];
        if (item.kind == RemoveItemKind::kProperty) {
          out += ToCypher(*item.target) + "." + item.key;
        } else {
          out += ToCypher(*item.target);
          for (const auto& label : item.labels) out += ":" + label;
        }
      }
      return out;
    }
    case ClauseKind::kDelete: {
      const auto& c = static_cast<const DeleteClause&>(clause);
      std::string out = c.detach ? "DETACH DELETE " : "DELETE ";
      for (size_t i = 0; i < c.exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToCypher(*c.exprs[i]);
      }
      return out;
    }
    case ClauseKind::kMerge: {
      const auto& c = static_cast<const MergeClause&>(clause);
      std::string out = "MERGE ";
      if (c.form == MergeForm::kAll) out += "ALL ";
      if (c.form == MergeForm::kSame) out += "SAME ";
      for (size_t i = 0; i < c.patterns.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToCypher(c.patterns[i]);
      }
      if (!c.on_create.empty()) {
        out += " ON CREATE SET ";
        for (size_t i = 0; i < c.on_create.size(); ++i) {
          if (i > 0) out += ", ";
          out += SetItemText(c.on_create[i]);
        }
      }
      if (!c.on_match.empty()) {
        out += " ON MATCH SET ";
        for (size_t i = 0; i < c.on_match.size(); ++i) {
          if (i > 0) out += ", ";
          out += SetItemText(c.on_match[i]);
        }
      }
      return out;
    }
    case ClauseKind::kCreateIndex: {
      const auto& c = static_cast<const CreateIndexClause&>(clause);
      return std::string(c.drop ? "DROP" : "CREATE") + " INDEX ON :" +
             c.label + "(" + c.key + ")";
    }
    case ClauseKind::kConstraint: {
      const auto& c = static_cast<const ConstraintClause&>(clause);
      return std::string(c.drop ? "DROP" : "CREATE") + " CONSTRAINT ON (n:" +
             c.label + ") ASSERT n." + c.key + " IS UNIQUE";
    }
    case ClauseKind::kCallSubquery: {
      const auto& c = static_cast<const CallSubqueryClause&>(clause);
      std::string out = "CALL { ";
      for (size_t i = 0; i < c.body.size(); ++i) {
        if (i > 0) out += " ";
        out += ToCypher(*c.body[i]);
      }
      return out + " }";
    }
    case ClauseKind::kForeach: {
      const auto& c = static_cast<const ForeachClause&>(clause);
      std::string out =
          "FOREACH (" + c.variable + " IN " + ToCypher(*c.list) + " | ";
      for (size_t i = 0; i < c.body.size(); ++i) {
        if (i > 0) out += " ";
        out += ToCypher(*c.body[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

std::string ToCypher(const Query& query) {
  std::string out;
  for (size_t p = 0; p < query.parts.size(); ++p) {
    if (p > 0) {
      out += query.union_all[p - 1] ? " UNION ALL " : " UNION ";
    }
    const SingleQuery& part = query.parts[p];
    for (size_t i = 0; i < part.clauses.size(); ++i) {
      if (i > 0) out += " ";
      out += ToCypher(*part.clauses[i]);
    }
  }
  return out;
}

}  // namespace cypher
