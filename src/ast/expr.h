#ifndef CYPHER_AST_EXPR_H_
#define CYPHER_AST_EXPR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "value/value.h"

namespace cypher {

/// Kind tag for Expr nodes. The evaluator dispatches on this (no virtual
/// Evaluate; the tree stays a passive description, per the paper's
/// expression semantics [[e]]_{G,u}).
enum class ExprKind {
  kLiteral,
  kParameter,
  kVariable,
  kProperty,
  kHasLabels,
  kUnary,
  kBinary,
  kIsNull,
  kList,
  kMap,
  kIndex,
  kFunction,
  kCountStar,
  kCase,
  kListComprehension,
  kQuantifier,
  kReduce,
  kPatternPredicate,
  kMapProjection,
};

/// Base of all expression AST nodes.
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;

  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  const ExprKind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A constant: 42, 'laptop', true, null, 3.5.
struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  Value value;
};

/// $name — resolved against the statement's parameter map.
struct ParameterExpr : Expr {
  explicit ParameterExpr(std::string n)
      : Expr(ExprKind::kParameter), name(std::move(n)) {}
  std::string name;
};

/// A driving-table variable reference.
struct VariableExpr : Expr {
  explicit VariableExpr(std::string n)
      : Expr(ExprKind::kVariable), name(std::move(n)) {}
  std::string name;
};

/// object.key property access (nodes, relationships, and maps).
struct PropertyExpr : Expr {
  PropertyExpr(ExprPtr obj, std::string k)
      : Expr(ExprKind::kProperty), object(std::move(obj)), key(std::move(k)) {}
  ExprPtr object;
  std::string key;
};

/// `expr:Label1:Label2` label predicate (WHERE n:Product).
struct HasLabelsExpr : Expr {
  HasLabelsExpr(ExprPtr obj, std::vector<std::string> l)
      : Expr(ExprKind::kHasLabels), object(std::move(obj)), labels(std::move(l)) {}
  ExprPtr object;
  std::vector<std::string> labels;
};

enum class UnaryOp { kNot, kMinus, kPlus };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp {
  kAnd,
  kOr,
  kXor,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kPow,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIn,
  kStartsWith,
  kEndsWith,
  kContains,
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), left(std::move(l)), right(std::move(r)) {}
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

/// expr IS NULL / expr IS NOT NULL.
struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr e, bool neg)
      : Expr(ExprKind::kIsNull), operand(std::move(e)), negated(neg) {}
  ExprPtr operand;
  bool negated;
};

struct ListExpr : Expr {
  explicit ListExpr(std::vector<ExprPtr> i)
      : Expr(ExprKind::kList), items(std::move(i)) {}
  std::vector<ExprPtr> items;
};

struct MapExpr : Expr {
  explicit MapExpr(std::vector<std::pair<std::string, ExprPtr>> e)
      : Expr(ExprKind::kMap), entries(std::move(e)) {}
  std::vector<std::pair<std::string, ExprPtr>> entries;
};

/// object[index] subscript on lists (0-based, negative from end) and maps.
struct IndexExpr : Expr {
  IndexExpr(ExprPtr obj, ExprPtr idx)
      : Expr(ExprKind::kIndex), object(std::move(obj)), index(std::move(idx)) {}
  ExprPtr object;
  ExprPtr index;
};

/// Scalar or aggregate function call. `name` is stored lowercase.
struct FunctionExpr : Expr {
  FunctionExpr(std::string n, bool d, std::vector<ExprPtr> a)
      : Expr(ExprKind::kFunction),
        name(std::move(n)),
        distinct(d),
        args(std::move(a)) {}
  std::string name;
  bool distinct;
  std::vector<ExprPtr> args;
};

/// count(*).
struct CountStarExpr : Expr {
  CountStarExpr() : Expr(ExprKind::kCountStar) {}
};

/// Generic CASE WHEN cond THEN val ... [ELSE val] END.
struct CaseExpr : Expr {
  CaseExpr(std::vector<std::pair<ExprPtr, ExprPtr>> w, ExprPtr e)
      : Expr(ExprKind::kCase), whens(std::move(w)), otherwise(std::move(e)) {}
  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  ExprPtr otherwise;  // may be null (-> null)
};

/// List comprehension `[var IN list WHERE pred | proj]`; `where` and
/// `projection` may each be null (copy / filter-only forms).
struct ListComprehensionExpr : Expr {
  ListComprehensionExpr(std::string v, ExprPtr l, ExprPtr w, ExprPtr p)
      : Expr(ExprKind::kListComprehension),
        variable(std::move(v)),
        list(std::move(l)),
        where(std::move(w)),
        projection(std::move(p)) {}
  std::string variable;
  ExprPtr list;
  ExprPtr where;       // may be null
  ExprPtr projection;  // may be null
};

enum class QuantifierKind { kAll, kAny, kNone, kSingle };

/// all/any/none/single(var IN list WHERE pred) with ternary-logic results.
struct QuantifierExpr : Expr {
  QuantifierExpr(QuantifierKind q, std::string v, ExprPtr l, ExprPtr p)
      : Expr(ExprKind::kQuantifier),
        quantifier(q),
        variable(std::move(v)),
        list(std::move(l)),
        predicate(std::move(p)) {}
  QuantifierKind quantifier;
  std::string variable;
  ExprPtr list;
  ExprPtr predicate;
};

/// reduce(acc = init, var IN list | body).
struct ReduceExpr : Expr {
  ReduceExpr(std::string a, ExprPtr i, std::string v, ExprPtr l, ExprPtr b)
      : Expr(ExprKind::kReduce),
        accumulator(std::move(a)),
        init(std::move(i)),
        variable(std::move(v)),
        list(std::move(l)),
        body(std::move(b)) {}
  std::string accumulator;
  ExprPtr init;
  std::string variable;
  ExprPtr list;
  ExprPtr body;
};

/// One item of a map projection `subject {.key, name: expr, var, .*}`.
struct MapProjectionItem {
  enum class Kind {
    kProperty,  // .key       -> key: subject.key
    kPair,      // key: expr
    kVariable,  // var        -> var: <value of var>
    kAll,       // .*         -> every property of subject
  };
  Kind kind;
  std::string name;  // key / variable name (empty for kAll)
  ExprPtr value;     // kPair only
};

/// `n {.name, id: n.id * 10, other, .*}` — builds a map from an entity or
/// map subject.
struct MapProjectionExpr : Expr {
  MapProjectionExpr(ExprPtr s, std::vector<MapProjectionItem> i)
      : Expr(ExprKind::kMapProjection),
        subject(std::move(s)),
        items(std::move(i)) {}
  ExprPtr subject;
  std::vector<MapProjectionItem> items;
};

/// True for the aggregate function names (count, collect, sum, avg, min,
/// max); `name` must be lowercase.
bool IsAggregateFunctionName(const std::string& name);

/// True if the expression tree contains an aggregate call or count(*)
/// anywhere (drives implicit grouping in RETURN/WITH).
bool ContainsAggregate(const Expr& expr);

/// Deep copy of an expression tree.
ExprPtr CloneExpr(const Expr& expr);

}  // namespace cypher

#endif  // CYPHER_AST_EXPR_H_
