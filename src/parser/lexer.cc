#include "parser/lexer.h"

#include <cctype>
#include <charconv>

namespace cypher {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kParameter:
      return "parameter";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kDotDot:
      return "'..'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kPlusEq:
      return "'+='";
    case TokenKind::kDash:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kCaret:
      return "'^'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      CYPHER_RETURN_NOT_OK(SkipSpaceAndComments());
      Token token = MakeToken(TokenKind::kEnd);
      if (pos_ >= text_.size()) {
        tokens.push_back(token);
        return tokens;
      }
      CYPHER_RETURN_NOT_OK(Next(&token));
      tokens.push_back(std::move(token));
    }
  }

 private:
  Status Error(const std::string& what) {
    return Status::SyntaxError(what + " at line " + std::to_string(line_) +
                               ", column " + std::to_string(column_));
  }

  Token MakeToken(TokenKind kind) {
    Token t;
    t.kind = kind;
    t.offset = pos_;
    t.line = line_;
    t.column = column_;
    return t;
  }

  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (pos_ < text_.size()) {
      if (text_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
      ++pos_;
    }
  }

  Status SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (pos_ < text_.size() && !(Peek() == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (pos_ >= text_.size()) return Error("unterminated block comment");
        Advance();
        Advance();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status Next(Token* out) {
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentifier(out);
    }
    if (c == '`') return LexBackquoted(out);
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber(out);
    if (c == '\'' || c == '"') return LexString(out);
    if (c == '$') return LexParameter(out);
    return LexOperator(out);
  }

  Status LexIdentifier(Token* out) {
    *out = MakeToken(TokenKind::kIdentifier);
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      Advance();
    }
    out->text = std::string(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status LexBackquoted(Token* out) {
    *out = MakeToken(TokenKind::kIdentifier);
    Advance();  // opening backquote
    std::string name;
    while (pos_ < text_.size() && text_[pos_] != '`') {
      name += text_[pos_];
      Advance();
    }
    if (pos_ >= text_.size()) return Error("unterminated backquoted name");
    Advance();  // closing backquote
    if (name.empty()) return Error("empty backquoted name");
    out->text = std::move(name);
    return Status::OK();
  }

  Status LexNumber(Token* out) {
    *out = MakeToken(TokenKind::kInteger);
    size_t start = pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    bool is_float = false;
    // A '.' starts a fraction only when not '..' (range operator) and when
    // followed by a digit (so `n.prop` never lexes into the number).
    if (Peek() == '.' && Peek(1) != '.' &&
        std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      char sign = Peek(1);
      size_t digits_at = (sign == '+' || sign == '-') ? 2 : 1;
      if (std::isdigit(static_cast<unsigned char>(Peek(digits_at)))) {
        is_float = true;
        Advance();  // e
        if (sign == '+' || sign == '-') Advance();
        while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (is_float) {
      out->kind = TokenKind::kFloat;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(),
                          out->float_value);
      if (ec != std::errc()) return Error("malformed float literal");
      (void)ptr;
    } else {
      auto [ptr, ec] = std::from_chars(
          token.data(), token.data() + token.size(), out->int_value);
      if (ec != std::errc()) return Error("integer literal out of range");
      (void)ptr;
    }
    return Status::OK();
  }

  Status LexString(Token* out) {
    *out = MakeToken(TokenKind::kString);
    char quote = Peek();
    Advance();
    std::string value;
    while (pos_ < text_.size()) {
      char c = Peek();
      if (c == quote) {
        Advance();
        out->text = std::move(value);
        return Status::OK();
      }
      if (c == '\\') {
        Advance();
        char e = Peek();
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case 'r':
            value += '\r';
            break;
          case '\\':
          case '\'':
          case '"':
          case '`':
            value += e;
            break;
          default:
            return Error(std::string("unknown escape '\\") + e + "'");
        }
        Advance();
        continue;
      }
      value += c;
      Advance();
    }
    return Error("unterminated string literal");
  }

  Status LexParameter(Token* out) {
    *out = MakeToken(TokenKind::kParameter);
    Advance();  // $
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      Advance();
    }
    if (pos_ == start) return Error("expected parameter name after '$'");
    out->text = std::string(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status LexOperator(Token* out) {
    char c = Peek();
    char n = Peek(1);
    auto emit = [&](TokenKind kind, int chars) {
      *out = MakeToken(kind);
      for (int i = 0; i < chars; ++i) Advance();
      return Status::OK();
    };
    switch (c) {
      case '(':
        return emit(TokenKind::kLParen, 1);
      case ')':
        return emit(TokenKind::kRParen, 1);
      case '[':
        return emit(TokenKind::kLBracket, 1);
      case ']':
        return emit(TokenKind::kRBracket, 1);
      case '{':
        return emit(TokenKind::kLBrace, 1);
      case '}':
        return emit(TokenKind::kRBrace, 1);
      case ',':
        return emit(TokenKind::kComma, 1);
      case ':':
        return emit(TokenKind::kColon, 1);
      case ';':
        return emit(TokenKind::kSemicolon, 1);
      case '|':
        return emit(TokenKind::kPipe, 1);
      case '.':
        if (n == '.') return emit(TokenKind::kDotDot, 2);
        return emit(TokenKind::kDot, 1);
      case '+':
        if (n == '=') return emit(TokenKind::kPlusEq, 2);
        return emit(TokenKind::kPlus, 1);
      case '-':
        return emit(TokenKind::kDash, 1);
      case '*':
        return emit(TokenKind::kStar, 1);
      case '/':
        return emit(TokenKind::kSlash, 1);
      case '%':
        return emit(TokenKind::kPercent, 1);
      case '^':
        return emit(TokenKind::kCaret, 1);
      case '=':
        return emit(TokenKind::kEq, 1);
      case '<':
        if (n == '=') return emit(TokenKind::kLe, 2);
        if (n == '>') return emit(TokenKind::kNe, 2);
        return emit(TokenKind::kLt, 1);
      case '>':
        if (n == '=') return emit(TokenKind::kGe, 2);
        return emit(TokenKind::kGt, 1);
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  return Lexer(text).Run();
}

}  // namespace cypher
