#ifndef CYPHER_PARSER_LEXER_H_
#define CYPHER_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "parser/token.h"

namespace cypher {

/// Tokenizes a full query string.
///
/// Supported lexical syntax:
///  * identifiers `[A-Za-z_][A-Za-z0-9_]*` and backquoted identifiers;
///  * integer and float literals (decimal; exponents); `1..2` lexes as
///    INTEGER DOTDOT INTEGER, not FLOAT FLOAT;
///  * single- or double-quoted strings with \\, \', \", \n, \t escapes;
///  * `$name` parameters;
///  * line comments `//` and block comments `/* */`;
///  * multi-char operators `<=`, `>=`, `<>`, `+=`, `..`.
///
/// Pattern arrows (`-[`, `]->`, `<-[`) are not lexed as units; the parser
/// assembles them from kDash/kLt/kGt, which keeps `a - b > c` unambiguous in
/// expression position.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace cypher

#endif  // CYPHER_PARSER_LEXER_H_
