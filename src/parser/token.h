#ifndef CYPHER_PARSER_TOKEN_H_
#define CYPHER_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace cypher {

/// Lexical token kinds. Keywords are lexed as kIdentifier; the parser
/// matches them case-insensitively (Cypher keywords are not reserved
/// globally, so `id` can be both a property key and a function name).
enum class TokenKind {
  kEnd,
  kIdentifier,
  kInteger,
  kFloat,
  kString,
  kParameter,  // $name
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kColon,
  kSemicolon,
  kDot,
  kDotDot,  // ..
  kPipe,
  kPlus,
  kPlusEq,  // +=
  kDash,
  kStar,
  kSlash,
  kPercent,
  kCaret,
  kEq,
  kNe,  // <>
  kLt,
  kLe,
  kGt,
  kGe,
};

/// Returns a printable description for diagnostics.
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier/parameter name or string contents
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;  // byte offset in the source
  int line = 1;
  int column = 1;
};

}  // namespace cypher

#endif  // CYPHER_PARSER_TOKEN_H_
