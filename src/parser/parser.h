#ifndef CYPHER_PARSER_PARSER_H_
#define CYPHER_PARSER_PARSER_H_

#include <string_view>

#include "ast/query.h"
#include "common/result.h"

namespace cypher {

/// Parses a full Cypher statement.
///
/// The grammar is the union of Figures 2-5 (Cypher 9) and Figure 10 (the
/// revised syntax): reading and update clauses interleave freely without
/// mandatory WITH demarcation, CREATE and MERGE ALL / MERGE SAME accept
/// tuples of directed path patterns, and legacy MERGE accepts a single
/// (possibly undirected) pattern plus ON CREATE SET / ON MATCH SET.
/// Shape restrictions that are semantic rather than lexical (e.g. CREATE
/// relationships need exactly one type and a direction) are enforced by the
/// executor's validation pass, not here.
Result<Query> ParseQuery(std::string_view text);

/// Parses a standalone expression (testing / REPL convenience).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace cypher

#endif  // CYPHER_PARSER_PARSER_H_
