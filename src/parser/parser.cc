#include "parser/parser.h"

#include <cctype>
#include <memory>
#include <utility>

#include "common/strings.h"
#include "parser/lexer.h"

namespace cypher {

namespace {

class Parser {
 public:
  Parser(std::string_view source, std::vector<Token> tokens)
      : source_(source), tokens_(std::move(tokens)) {}

  Result<Query> ParseStatement() {
    Query query;
    if (ConsumeKeyword("EXPLAIN")) {
      query.mode = QueryMode::kExplain;
    } else if (ConsumeKeyword("PROFILE")) {
      query.mode = QueryMode::kProfile;
    }
    CYPHER_ASSIGN_OR_RETURN(SingleQuery first, ParseSingleQuery());
    query.parts.push_back(std::move(first));
    while (ConsumeKeyword("UNION")) {
      bool all = ConsumeKeyword("ALL");
      CYPHER_ASSIGN_OR_RETURN(SingleQuery next, ParseSingleQuery());
      query.parts.push_back(std::move(next));
      query.union_all.push_back(all);
    }
    Consume(TokenKind::kSemicolon);
    if (!AtEnd()) return Error("unexpected input after end of query");
    return query;
  }

  Result<ExprPtr> ParseWholeExpression() {
    CYPHER_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    if (!AtEnd()) return Error("unexpected input after expression");
    return expr;
  }

 private:
  // ---- Token utilities ------------------------------------------------------

  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Cur().kind == TokenKind::kEnd; }

  bool At(TokenKind kind) const { return Cur().kind == kind; }

  bool Consume(TokenKind kind) {
    if (!At(kind)) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind kind) {
    if (Consume(kind)) return Status::OK();
    return Error(std::string("expected ") + TokenKindName(kind));
  }

  static bool TokenIsKeyword(const Token& token, std::string_view keyword) {
    return token.kind == TokenKind::kIdentifier &&
           EqualsIgnoreCase(token.text, keyword);
  }

  bool AtKeyword(std::string_view keyword) const {
    return TokenIsKeyword(Cur(), keyword);
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (!AtKeyword(keyword)) return false;
    ++pos_;
    return true;
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (ConsumeKeyword(keyword)) return Status::OK();
    return Error("expected keyword " + std::string(keyword));
  }

  Status Error(const std::string& what) const {
    const Token& t = Cur();
    std::string got = t.kind == TokenKind::kIdentifier
                          ? "'" + t.text + "'"
                          : TokenKindName(t.kind);
    return Status::SyntaxError(what + ", got " + got + " at line " +
                               std::to_string(t.line) + ", column " +
                               std::to_string(t.column));
  }

  /// Source text between two token offsets, trimmed (used for implicit
  /// projection aliases).
  std::string SourceBetween(size_t begin_token, size_t end_token) const {
    size_t begin = tokens_[begin_token].offset;
    size_t end = end_token < tokens_.size() ? tokens_[end_token].offset
                                            : source_.size();
    return std::string(StripAsciiWhitespace(source_.substr(begin, end - begin)));
  }

  // ---- Clauses --------------------------------------------------------------

  bool AtClauseBoundary() const {
    if (AtEnd() || At(TokenKind::kSemicolon) || At(TokenKind::kRParen)) {
      return true;
    }
    return AtKeyword("UNION");
  }

  Result<SingleQuery> ParseSingleQuery() {
    SingleQuery query;
    if (AtClauseBoundary()) return Error("expected a clause");
    while (!AtClauseBoundary()) {
      CYPHER_ASSIGN_OR_RETURN(ClausePtr clause, ParseClause());
      bool is_return = clause->kind == ClauseKind::kReturn;
      query.clauses.push_back(std::move(clause));
      if (is_return && !AtClauseBoundary()) {
        return Error("RETURN must be the final clause");
      }
    }
    return query;
  }

  Result<ClausePtr> ParseClause() {
    if (ConsumeKeyword("OPTIONAL")) {
      CYPHER_RETURN_NOT_OK(ExpectKeyword("MATCH"));
      return ParseMatch(/*optional=*/true);
    }
    if (ConsumeKeyword("MATCH")) return ParseMatch(/*optional=*/false);
    if (ConsumeKeyword("UNWIND")) return ParseUnwind();
    if (ConsumeKeyword("WITH")) return ParseWith();
    if (ConsumeKeyword("RETURN")) return ParseReturn();
    if (ConsumeKeyword("CREATE")) {
      if (ConsumeKeyword("INDEX")) return ParseIndexClause(/*drop=*/false);
      if (ConsumeKeyword("CONSTRAINT")) {
        return ParseConstraintClause(/*drop=*/false);
      }
      return ParseCreate();
    }
    if (ConsumeKeyword("DROP")) {
      if (ConsumeKeyword("INDEX")) return ParseIndexClause(/*drop=*/true);
      if (ConsumeKeyword("CONSTRAINT")) {
        return ParseConstraintClause(/*drop=*/true);
      }
      return Error("expected INDEX or CONSTRAINT after DROP");
    }
    if (ConsumeKeyword("SET")) return ParseSet();
    if (ConsumeKeyword("REMOVE")) return ParseRemove();
    if (ConsumeKeyword("DETACH")) {
      CYPHER_RETURN_NOT_OK(ExpectKeyword("DELETE"));
      return ParseDelete(/*detach=*/true);
    }
    if (ConsumeKeyword("DELETE")) return ParseDelete(/*detach=*/false);
    if (ConsumeKeyword("MERGE")) return ParseMerge();
    if (ConsumeKeyword("FOREACH")) return ParseForeach();
    if (AtKeyword("CALL") && Peek().kind == TokenKind::kLBrace) {
      ++pos_;
      return ParseCallSubquery();
    }
    return Error("expected a clause keyword");
  }

  Result<ClausePtr> ParseMatch(bool optional) {
    auto clause = std::make_unique<MatchClause>();
    clause->optional = optional;
    CYPHER_ASSIGN_OR_RETURN(clause->patterns, ParsePatternList());
    if (ConsumeKeyword("WHERE")) {
      CYPHER_ASSIGN_OR_RETURN(clause->where, ParseExpr());
    }
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseUnwind() {
    auto clause = std::make_unique<UnwindClause>();
    CYPHER_ASSIGN_OR_RETURN(clause->list, ParseExpr());
    CYPHER_RETURN_NOT_OK(ExpectKeyword("AS"));
    CYPHER_ASSIGN_OR_RETURN(clause->variable, ParseName("variable"));
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseWith() {
    auto clause = std::make_unique<WithClause>();
    CYPHER_ASSIGN_OR_RETURN(clause->body, ParseProjectionBody());
    if (ConsumeKeyword("WHERE")) {
      CYPHER_ASSIGN_OR_RETURN(clause->where, ParseExpr());
    }
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseReturn() {
    auto clause = std::make_unique<ReturnClause>();
    CYPHER_ASSIGN_OR_RETURN(clause->body, ParseProjectionBody());
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseCreate() {
    auto clause = std::make_unique<CreateClause>();
    CYPHER_ASSIGN_OR_RETURN(clause->patterns, ParsePatternList());
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseSet() {
    auto clause = std::make_unique<SetClause>();
    CYPHER_ASSIGN_OR_RETURN(clause->items, ParseSetItems());
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseRemove() {
    auto clause = std::make_unique<RemoveClause>();
    while (true) {
      CYPHER_ASSIGN_OR_RETURN(ExprPtr target, ParsePostfixExpr());
      RemoveItem item;
      if (target->kind == ExprKind::kProperty) {
        auto* prop = static_cast<PropertyExpr*>(target.get());
        item.kind = RemoveItemKind::kProperty;
        item.key = prop->key;
        item.target = std::move(prop->object);
      } else if (target->kind == ExprKind::kHasLabels) {
        auto* has = static_cast<HasLabelsExpr*>(target.get());
        item.kind = RemoveItemKind::kLabels;
        item.labels = has->labels;
        item.target = std::move(has->object);
      } else {
        return Error("REMOVE item must be expr.key or expr:Label");
      }
      clause->items.push_back(std::move(item));
      if (!Consume(TokenKind::kComma)) break;
    }
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseDelete(bool detach) {
    auto clause = std::make_unique<DeleteClause>();
    clause->detach = detach;
    while (true) {
      CYPHER_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
      clause->exprs.push_back(std::move(expr));
      if (!Consume(TokenKind::kComma)) break;
    }
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseMerge() {
    auto clause = std::make_unique<MergeClause>();
    // `MERGE ALL` / `MERGE SAME` unless ALL/SAME is a path variable
    // (`MERGE all = (...)`, disambiguated by the '=').
    if (AtKeyword("ALL") && Peek().kind != TokenKind::kEq) {
      ++pos_;
      clause->form = MergeForm::kAll;
    } else if (AtKeyword("SAME") && Peek().kind != TokenKind::kEq) {
      ++pos_;
      clause->form = MergeForm::kSame;
    }
    if (clause->form == MergeForm::kLegacy) {
      CYPHER_ASSIGN_OR_RETURN(PathPattern pattern, ParsePathPattern());
      clause->patterns.push_back(std::move(pattern));
      while (AtKeyword("ON")) {
        ++pos_;
        bool on_create = false;
        if (ConsumeKeyword("CREATE")) {
          on_create = true;
        } else if (!ConsumeKeyword("MATCH")) {
          return Error("expected CREATE or MATCH after ON");
        }
        CYPHER_RETURN_NOT_OK(ExpectKeyword("SET"));
        CYPHER_ASSIGN_OR_RETURN(std::vector<SetItem> items, ParseSetItems());
        auto& dest = on_create ? clause->on_create : clause->on_match;
        for (auto& item : items) dest.push_back(std::move(item));
      }
    } else {
      CYPHER_ASSIGN_OR_RETURN(clause->patterns, ParsePatternList());
    }
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseIndexClause(bool drop) {
    auto clause = std::make_unique<CreateIndexClause>();
    clause->drop = drop;
    CYPHER_RETURN_NOT_OK(ExpectKeyword("ON"));
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kColon));
    CYPHER_ASSIGN_OR_RETURN(clause->label, ParseName("label"));
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    CYPHER_ASSIGN_OR_RETURN(clause->key, ParseName("property key"));
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    return ClausePtr(std::move(clause));
  }

  /// `ON (n:Label) ASSERT n.key IS UNIQUE` after CREATE/DROP CONSTRAINT.
  Result<ClausePtr> ParseConstraintClause(bool drop) {
    auto clause = std::make_unique<ConstraintClause>();
    clause->drop = drop;
    CYPHER_RETURN_NOT_OK(ExpectKeyword("ON"));
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    CYPHER_ASSIGN_OR_RETURN(std::string var, ParseName("variable"));
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kColon));
    CYPHER_ASSIGN_OR_RETURN(clause->label, ParseName("label"));
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    CYPHER_RETURN_NOT_OK(ExpectKeyword("ASSERT"));
    CYPHER_ASSIGN_OR_RETURN(std::string var2, ParseName("variable"));
    if (var2 != var) {
      return Error("constraint variable '" + var2 + "' does not match '" +
                   var + "'");
    }
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kDot));
    CYPHER_ASSIGN_OR_RETURN(clause->key, ParseName("property key"));
    CYPHER_RETURN_NOT_OK(ExpectKeyword("IS"));
    CYPHER_RETURN_NOT_OK(ExpectKeyword("UNIQUE"));
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseForeach() {
    auto clause = std::make_unique<ForeachClause>();
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    CYPHER_ASSIGN_OR_RETURN(clause->variable, ParseName("variable"));
    CYPHER_RETURN_NOT_OK(ExpectKeyword("IN"));
    CYPHER_ASSIGN_OR_RETURN(clause->list, ParseExpr());
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kPipe));
    while (!At(TokenKind::kRParen)) {
      CYPHER_ASSIGN_OR_RETURN(ClausePtr inner, ParseClause());
      if (!IsUpdateClause(*inner)) {
        return Error("FOREACH body allows update clauses only");
      }
      clause->body.push_back(std::move(inner));
    }
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    if (clause->body.empty()) return Error("FOREACH body is empty");
    return ClausePtr(std::move(clause));
  }

  Result<ClausePtr> ParseCallSubquery() {
    auto clause = std::make_unique<CallSubqueryClause>();
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kLBrace));
    while (!At(TokenKind::kRBrace)) {
      if (AtEnd()) return Error("unterminated CALL { ... } subquery");
      CYPHER_ASSIGN_OR_RETURN(ClausePtr inner, ParseClause());
      bool is_return = inner->kind == ClauseKind::kReturn;
      clause->body.push_back(std::move(inner));
      if (is_return && !At(TokenKind::kRBrace)) {
        return Error("RETURN must be the final clause of a subquery");
      }
    }
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRBrace));
    if (clause->body.empty()) return Error("CALL { } subquery is empty");
    return ClausePtr(std::move(clause));
  }

  Result<std::string> ParseName(const char* what) {
    if (!At(TokenKind::kIdentifier)) {
      return Error(std::string("expected ") + what + " name");
    }
    std::string name = Cur().text;
    ++pos_;
    return name;
  }

  Result<std::vector<SetItem>> ParseSetItems() {
    std::vector<SetItem> items;
    while (true) {
      CYPHER_ASSIGN_OR_RETURN(SetItem item, ParseSetItem());
      items.push_back(std::move(item));
      if (!Consume(TokenKind::kComma)) break;
    }
    return items;
  }

  Result<SetItem> ParseSetItem() {
    CYPHER_ASSIGN_OR_RETURN(ExprPtr target, ParsePostfixExpr());
    SetItem item;
    if (Consume(TokenKind::kEq)) {
      if (target->kind == ExprKind::kProperty) {
        auto* prop = static_cast<PropertyExpr*>(target.get());
        item.kind = SetItemKind::kSetProperty;
        item.key = prop->key;
        item.target = std::move(prop->object);
      } else if (target->kind == ExprKind::kVariable) {
        item.kind = SetItemKind::kReplaceProps;
        item.target = std::move(target);
      } else {
        return Error("SET target must be expr.key or a variable");
      }
      CYPHER_ASSIGN_OR_RETURN(item.value, ParseExpr());
      return item;
    }
    if (Consume(TokenKind::kPlusEq)) {
      item.kind = SetItemKind::kMergeProps;
      item.target = std::move(target);
      CYPHER_ASSIGN_OR_RETURN(item.value, ParseExpr());
      return item;
    }
    if (target->kind == ExprKind::kHasLabels) {
      auto* has = static_cast<HasLabelsExpr*>(target.get());
      item.kind = SetItemKind::kSetLabels;
      item.labels = has->labels;
      item.target = std::move(has->object);
      return item;
    }
    return Error("malformed SET item");
  }

  Result<ProjectionBody> ParseProjectionBody() {
    ProjectionBody body;
    body.distinct = ConsumeKeyword("DISTINCT");
    bool expect_items = true;
    if (Consume(TokenKind::kStar)) {
      body.include_existing = true;
      expect_items = Consume(TokenKind::kComma);
    }
    if (expect_items) {
      while (true) {
        size_t begin_token = pos_;
        ReturnItem item;
        CYPHER_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          CYPHER_ASSIGN_OR_RETURN(item.alias, ParseName("alias"));
        } else {
          item.alias = SourceBetween(begin_token, pos_);
        }
        body.items.push_back(std::move(item));
        if (!Consume(TokenKind::kComma)) break;
      }
    }
    if (AtKeyword("ORDER")) {
      ++pos_;
      CYPHER_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        SortItem sort;
        CYPHER_ASSIGN_OR_RETURN(sort.expr, ParseExpr());
        if (ConsumeKeyword("DESC") || ConsumeKeyword("DESCENDING")) {
          sort.ascending = false;
        } else if (ConsumeKeyword("ASC") || ConsumeKeyword("ASCENDING")) {
          sort.ascending = true;
        }
        body.order_by.push_back(std::move(sort));
        if (!Consume(TokenKind::kComma)) break;
      }
    }
    if (ConsumeKeyword("SKIP")) {
      CYPHER_ASSIGN_OR_RETURN(body.skip, ParseExpr());
    }
    if (ConsumeKeyword("LIMIT")) {
      CYPHER_ASSIGN_OR_RETURN(body.limit, ParseExpr());
    }
    return body;
  }

  // ---- Patterns -------------------------------------------------------------

  Result<std::vector<PathPattern>> ParsePatternList() {
    std::vector<PathPattern> patterns;
    while (true) {
      CYPHER_ASSIGN_OR_RETURN(PathPattern pattern, ParsePathPattern());
      patterns.push_back(std::move(pattern));
      if (!Consume(TokenKind::kComma)) break;
    }
    return patterns;
  }

  Result<PathPattern> ParsePathPattern() {
    PathPattern pattern;
    if (At(TokenKind::kIdentifier) && Peek().kind == TokenKind::kEq) {
      pattern.path_variable = Cur().text;
      pos_ += 2;
    }
    bool wrapped = false;
    if (At(TokenKind::kIdentifier) && Peek().kind == TokenKind::kLParen) {
      if (EqualsIgnoreCase(Cur().text, "shortestPath")) {
        pattern.function = PathFunction::kShortest;
        wrapped = true;
      } else if (EqualsIgnoreCase(Cur().text, "allShortestPaths")) {
        pattern.function = PathFunction::kAllShortest;
        wrapped = true;
      }
      if (wrapped) pos_ += 2;  // name, '('
    }
    CYPHER_ASSIGN_OR_RETURN(pattern.start, ParseNodePattern());
    while (At(TokenKind::kDash) || At(TokenKind::kLt)) {
      CYPHER_ASSIGN_OR_RETURN(RelPattern rel, ParseRelPattern());
      CYPHER_ASSIGN_OR_RETURN(NodePattern node, ParseNodePattern());
      pattern.steps.emplace_back(std::move(rel), std::move(node));
    }
    if (wrapped) {
      CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      if (pattern.steps.size() != 1 || !pattern.steps[0].first.var_length) {
        return Error(
            "shortestPath()/allShortestPaths() expects a single "
            "variable-length relationship pattern");
      }
    }
    return pattern;
  }

  Result<NodePattern> ParseNodePattern() {
    NodePattern node;
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    if (At(TokenKind::kIdentifier)) {
      node.variable = Cur().text;
      ++pos_;
    }
    while (Consume(TokenKind::kColon)) {
      CYPHER_ASSIGN_OR_RETURN(std::string label, ParseName("label"));
      node.labels.push_back(std::move(label));
    }
    if (At(TokenKind::kLBrace)) {
      CYPHER_ASSIGN_OR_RETURN(node.properties, ParsePropertyMap());
    }
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    return node;
  }

  Result<RelPattern> ParseRelPattern() {
    RelPattern rel;
    bool left = false;
    if (Consume(TokenKind::kLt)) {
      left = true;
    }
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kDash));
    if (Consume(TokenKind::kLBracket)) {
      if (At(TokenKind::kIdentifier)) {
        rel.variable = Cur().text;
        ++pos_;
      }
      if (Consume(TokenKind::kColon)) {
        CYPHER_ASSIGN_OR_RETURN(std::string type, ParseName("relationship type"));
        rel.types.push_back(std::move(type));
        while (Consume(TokenKind::kPipe)) {
          Consume(TokenKind::kColon);  // both :A|B and :A|:B accepted
          CYPHER_ASSIGN_OR_RETURN(std::string more, ParseName("relationship type"));
          rel.types.push_back(std::move(more));
        }
      }
      if (Consume(TokenKind::kStar)) {
        rel.var_length = true;
        rel.min_hops = 1;
        rel.max_hops = -1;
        if (At(TokenKind::kInteger)) {
          rel.min_hops = Cur().int_value;
          rel.max_hops = rel.min_hops;
          ++pos_;
        }
        if (Consume(TokenKind::kDotDot)) {
          rel.max_hops = -1;
          if (At(TokenKind::kInteger)) {
            rel.max_hops = Cur().int_value;
            ++pos_;
          }
        }
      }
      if (At(TokenKind::kLBrace)) {
        CYPHER_ASSIGN_OR_RETURN(rel.properties, ParsePropertyMap());
      }
      CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
    }
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kDash));
    bool right = Consume(TokenKind::kGt);
    if (left && right) {
      return Error("relationship pattern cannot point both ways");
    }
    rel.direction = left ? RelDirection::kRightToLeft
                         : right ? RelDirection::kLeftToRight
                                 : RelDirection::kUndirected;
    return rel;
  }

  Result<std::vector<std::pair<std::string, ExprPtr>>> ParsePropertyMap() {
    std::vector<std::pair<std::string, ExprPtr>> props;
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kLBrace));
    if (Consume(TokenKind::kRBrace)) return props;
    while (true) {
      CYPHER_ASSIGN_OR_RETURN(std::string key, ParseName("property key"));
      CYPHER_RETURN_NOT_OK(Expect(TokenKind::kColon));
      CYPHER_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      props.emplace_back(std::move(key), std::move(value));
      if (Consume(TokenKind::kComma)) continue;
      CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRBrace));
      return props;
    }
  }

  // ---- Expressions ----------------------------------------------------------

  /// Hard cap on expression nesting so adversarial inputs ("((((((...")
  /// produce a SyntaxError instead of exhausting the stack.
  static constexpr int kMaxExpressionDepth = 400;

  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };

  Result<ExprPtr> ParseExpr() {
    if (expr_depth_ >= kMaxExpressionDepth) {
      return Error("expression nesting too deep");
    }
    DepthGuard guard(&expr_depth_);
    return ParseOr();
  }

  Result<ExprPtr> ParseOr() {
    CYPHER_ASSIGN_OR_RETURN(ExprPtr left, ParseXor());
    while (ConsumeKeyword("OR")) {
      CYPHER_ASSIGN_OR_RETURN(ExprPtr right, ParseXor());
      left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseXor() {
    CYPHER_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ConsumeKeyword("XOR")) {
      CYPHER_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = std::make_unique<BinaryExpr>(BinaryOp::kXor, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    CYPHER_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (ConsumeKeyword("AND")) {
      CYPHER_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      if (expr_depth_ >= kMaxExpressionDepth) {
        return Error("expression nesting too deep");
      }
      DepthGuard guard(&expr_depth_);
      CYPHER_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    CYPHER_ASSIGN_OR_RETURN(ExprPtr left, ParseAddSub());
    while (true) {
      BinaryOp op;
      if (Consume(TokenKind::kEq)) {
        op = BinaryOp::kEq;
      } else if (Consume(TokenKind::kNe)) {
        op = BinaryOp::kNe;
      } else if (Consume(TokenKind::kLe)) {
        op = BinaryOp::kLe;
      } else if (Consume(TokenKind::kGe)) {
        op = BinaryOp::kGe;
      } else if (Consume(TokenKind::kLt)) {
        op = BinaryOp::kLt;
      } else if (Consume(TokenKind::kGt)) {
        op = BinaryOp::kGt;
      } else if (ConsumeKeyword("IN")) {
        op = BinaryOp::kIn;
      } else if (AtKeyword("STARTS")) {
        ++pos_;
        CYPHER_RETURN_NOT_OK(ExpectKeyword("WITH"));
        op = BinaryOp::kStartsWith;
      } else if (AtKeyword("ENDS")) {
        ++pos_;
        CYPHER_RETURN_NOT_OK(ExpectKeyword("WITH"));
        op = BinaryOp::kEndsWith;
      } else if (ConsumeKeyword("CONTAINS")) {
        op = BinaryOp::kContains;
      } else if (AtKeyword("IS")) {
        ++pos_;
        bool negated = ConsumeKeyword("NOT");
        CYPHER_RETURN_NOT_OK(ExpectKeyword("NULL"));
        left = std::make_unique<IsNullExpr>(std::move(left), negated);
        continue;
      } else {
        return left;
      }
      CYPHER_ASSIGN_OR_RETURN(ExprPtr right, ParseAddSub());
      left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseAddSub() {
    CYPHER_ASSIGN_OR_RETURN(ExprPtr left, ParseMulDiv());
    while (true) {
      BinaryOp op;
      if (Consume(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Consume(TokenKind::kDash)) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      CYPHER_ASSIGN_OR_RETURN(ExprPtr right, ParseMulDiv());
      left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMulDiv() {
    CYPHER_ASSIGN_OR_RETURN(ExprPtr left, ParsePower());
    while (true) {
      BinaryOp op;
      if (Consume(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (Consume(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Consume(TokenKind::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      CYPHER_ASSIGN_OR_RETURN(ExprPtr right, ParsePower());
      left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParsePower() {
    CYPHER_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    if (Consume(TokenKind::kCaret)) {
      CYPHER_ASSIGN_OR_RETURN(ExprPtr right, ParsePower());  // right-assoc
      return ExprPtr(std::make_unique<BinaryExpr>(
          BinaryOp::kPow, std::move(left), std::move(right)));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (At(TokenKind::kDash) || At(TokenKind::kPlus)) {
      if (expr_depth_ >= kMaxExpressionDepth) {
        return Error("expression nesting too deep");
      }
      DepthGuard guard(&expr_depth_);
      if (Consume(TokenKind::kDash)) {
        CYPHER_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
        return ExprPtr(
            std::make_unique<UnaryExpr>(UnaryOp::kMinus, std::move(operand)));
      }
      Consume(TokenKind::kPlus);
      CYPHER_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kPlus, std::move(operand)));
    }
    return ParsePostfixExpr();
  }

  Result<ExprPtr> ParsePostfixExpr() {
    CYPHER_ASSIGN_OR_RETURN(ExprPtr expr, ParseAtom());
    while (true) {
      if (Consume(TokenKind::kDot)) {
        CYPHER_ASSIGN_OR_RETURN(std::string key, ParseName("property key"));
        expr = std::make_unique<PropertyExpr>(std::move(expr), std::move(key));
        continue;
      }
      if (Consume(TokenKind::kLBracket)) {
        CYPHER_ASSIGN_OR_RETURN(ExprPtr index, ParseExpr());
        CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
        expr = std::make_unique<IndexExpr>(std::move(expr), std::move(index));
        continue;
      }
      if (At(TokenKind::kColon) && Peek().kind == TokenKind::kIdentifier) {
        std::vector<std::string> labels;
        while (Consume(TokenKind::kColon)) {
          CYPHER_ASSIGN_OR_RETURN(std::string label, ParseName("label"));
          labels.push_back(std::move(label));
        }
        expr = std::make_unique<HasLabelsExpr>(std::move(expr),
                                               std::move(labels));
        continue;
      }
      if (At(TokenKind::kLBrace)) {
        CYPHER_ASSIGN_OR_RETURN(auto items, ParseMapProjectionItems());
        expr = std::make_unique<MapProjectionExpr>(std::move(expr),
                                                   std::move(items));
        continue;
      }
      return expr;
    }
  }

  Result<std::vector<MapProjectionItem>> ParseMapProjectionItems() {
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kLBrace));
    std::vector<MapProjectionItem> items;
    if (Consume(TokenKind::kRBrace)) return items;
    while (true) {
      MapProjectionItem item;
      if (Consume(TokenKind::kDot)) {
        if (Consume(TokenKind::kStar)) {
          item.kind = MapProjectionItem::Kind::kAll;
        } else {
          CYPHER_ASSIGN_OR_RETURN(item.name, ParseName("property key"));
          item.kind = MapProjectionItem::Kind::kProperty;
        }
      } else {
        CYPHER_ASSIGN_OR_RETURN(item.name, ParseName("projection key"));
        if (Consume(TokenKind::kColon)) {
          item.kind = MapProjectionItem::Kind::kPair;
          CYPHER_ASSIGN_OR_RETURN(item.value, ParseExpr());
        } else {
          item.kind = MapProjectionItem::Kind::kVariable;
        }
      }
      items.push_back(std::move(item));
      if (Consume(TokenKind::kComma)) continue;
      CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRBrace));
      return items;
    }
  }

  Result<ExprPtr> ParseAtom() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokenKind::kInteger: {
        ++pos_;
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Int(t.int_value)));
      }
      case TokenKind::kFloat: {
        ++pos_;
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Float(t.float_value)));
      }
      case TokenKind::kString: {
        ++pos_;
        return ExprPtr(std::make_unique<LiteralExpr>(Value::String(t.text)));
      }
      case TokenKind::kParameter: {
        ++pos_;
        return ExprPtr(std::make_unique<ParameterExpr>(t.text));
      }
      case TokenKind::kLParen: {
        ++pos_;
        CYPHER_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
        CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        return expr;
      }
      case TokenKind::kLBracket: {
        // `[x IN list ...]` is a comprehension, not a list literal.
        if (Peek(1).kind == TokenKind::kIdentifier &&
            TokenIsKeyword(Peek(2), "IN")) {
          return ParseListComprehension();
        }
        ++pos_;
        std::vector<ExprPtr> items;
        if (!Consume(TokenKind::kRBracket)) {
          while (true) {
            CYPHER_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
            items.push_back(std::move(item));
            if (Consume(TokenKind::kComma)) continue;
            CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
            break;
          }
        }
        return ExprPtr(std::make_unique<ListExpr>(std::move(items)));
      }
      case TokenKind::kLBrace: {
        CYPHER_ASSIGN_OR_RETURN(auto entries, ParsePropertyMap());
        return ExprPtr(std::make_unique<MapExpr>(std::move(entries)));
      }
      case TokenKind::kIdentifier:
        break;  // handled below
      default:
        return Error("expected an expression");
    }
    // Identifier-led atoms.
    if (TokenIsKeyword(t, "true")) {
      ++pos_;
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(true)));
    }
    if (TokenIsKeyword(t, "false")) {
      ++pos_;
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(false)));
    }
    if (TokenIsKeyword(t, "null")) {
      ++pos_;
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
    }
    if (TokenIsKeyword(t, "case")) {
      ++pos_;
      return ParseCase();
    }
    if (Peek().kind == TokenKind::kLParen) {
      // Function call.
      std::string name;
      name.reserve(t.text.size());
      for (char c : t.text) {
        name += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      pos_ += 2;  // name, '('
      if (name == "count" && Consume(TokenKind::kStar)) {
        CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        return ExprPtr(std::make_unique<CountStarExpr>());
      }
      if (name == "all" || name == "any" || name == "none" ||
          name == "single") {
        QuantifierKind q = name == "all"    ? QuantifierKind::kAll
                           : name == "any"  ? QuantifierKind::kAny
                           : name == "none" ? QuantifierKind::kNone
                                            : QuantifierKind::kSingle;
        return ParseQuantifier(q);
      }
      if (name == "reduce") return ParseReduce();
      if (name == "exists") {
        // `exists(<pattern>)` is a pattern predicate; `exists(<expr>)` is
        // the scalar non-null test. Try the pattern form first and
        // backtrack (patterns with at least one relationship step are
        // unambiguous; a bare `(x)` falls through to the scalar form).
        size_t saved = pos_;
        auto pattern = ParsePathPattern();
        if (pattern.ok() && !pattern->steps.empty() &&
            Consume(TokenKind::kRParen)) {
          return ExprPtr(
              std::make_unique<PatternPredicateExpr>(std::move(*pattern)));
        }
        pos_ = saved;
      }
      bool distinct = ConsumeKeyword("DISTINCT");
      std::vector<ExprPtr> args;
      if (!Consume(TokenKind::kRParen)) {
        while (true) {
          CYPHER_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
          if (Consume(TokenKind::kComma)) continue;
          CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRParen));
          break;
        }
      }
      return ExprPtr(std::make_unique<FunctionExpr>(std::move(name), distinct,
                                                    std::move(args)));
    }
    ++pos_;
    return ExprPtr(std::make_unique<VariableExpr>(t.text));
  }

  Result<ExprPtr> ParseListComprehension() {
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kLBracket));
    CYPHER_ASSIGN_OR_RETURN(std::string variable, ParseName("variable"));
    CYPHER_RETURN_NOT_OK(ExpectKeyword("IN"));
    CYPHER_ASSIGN_OR_RETURN(ExprPtr list, ParseExpr());
    ExprPtr where;
    if (ConsumeKeyword("WHERE")) {
      CYPHER_ASSIGN_OR_RETURN(where, ParseExpr());
    }
    ExprPtr projection;
    if (Consume(TokenKind::kPipe)) {
      CYPHER_ASSIGN_OR_RETURN(projection, ParseExpr());
    }
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
    return ExprPtr(std::make_unique<ListComprehensionExpr>(
        std::move(variable), std::move(list), std::move(where),
        std::move(projection)));
  }

  /// Parses `(x IN list WHERE pred)` after the quantifier name + '('.
  Result<ExprPtr> ParseQuantifier(QuantifierKind quantifier) {
    CYPHER_ASSIGN_OR_RETURN(std::string variable, ParseName("variable"));
    CYPHER_RETURN_NOT_OK(ExpectKeyword("IN"));
    CYPHER_ASSIGN_OR_RETURN(ExprPtr list, ParseExpr());
    CYPHER_RETURN_NOT_OK(ExpectKeyword("WHERE"));
    CYPHER_ASSIGN_OR_RETURN(ExprPtr predicate, ParseExpr());
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    return ExprPtr(std::make_unique<QuantifierExpr>(
        quantifier, std::move(variable), std::move(list),
        std::move(predicate)));
  }

  /// Parses `(acc = init, x IN list | body)` after `reduce(`.
  Result<ExprPtr> ParseReduce() {
    CYPHER_ASSIGN_OR_RETURN(std::string accumulator, ParseName("accumulator"));
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kEq));
    CYPHER_ASSIGN_OR_RETURN(ExprPtr init, ParseExpr());
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kComma));
    CYPHER_ASSIGN_OR_RETURN(std::string variable, ParseName("variable"));
    CYPHER_RETURN_NOT_OK(ExpectKeyword("IN"));
    CYPHER_ASSIGN_OR_RETURN(ExprPtr list, ParseExpr());
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kPipe));
    CYPHER_ASSIGN_OR_RETURN(ExprPtr body, ParseExpr());
    CYPHER_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    return ExprPtr(std::make_unique<ReduceExpr>(
        std::move(accumulator), std::move(init), std::move(variable),
        std::move(list), std::move(body)));
  }

  Result<ExprPtr> ParseCase() {
    std::vector<std::pair<ExprPtr, ExprPtr>> whens;
    // Simple-form CASE (CASE expr WHEN v THEN r ...) is desugared to the
    // generic form with equality comparisons.
    ExprPtr subject;
    if (!AtKeyword("WHEN")) {
      CYPHER_ASSIGN_OR_RETURN(subject, ParseExpr());
    }
    while (ConsumeKeyword("WHEN")) {
      CYPHER_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      if (subject) {
        cond = std::make_unique<BinaryExpr>(BinaryOp::kEq, CloneExpr(*subject),
                                            std::move(cond));
      }
      CYPHER_RETURN_NOT_OK(ExpectKeyword("THEN"));
      CYPHER_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      whens.emplace_back(std::move(cond), std::move(then));
    }
    if (whens.empty()) return Error("CASE requires at least one WHEN");
    ExprPtr otherwise;
    if (ConsumeKeyword("ELSE")) {
      CYPHER_ASSIGN_OR_RETURN(otherwise, ParseExpr());
    }
    CYPHER_RETURN_NOT_OK(ExpectKeyword("END"));
    return ExprPtr(
        std::make_unique<CaseExpr>(std::move(whens), std::move(otherwise)));
  }

  std::string_view source_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int expr_depth_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  CYPHER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(text, std::move(tokens)).ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  CYPHER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(text, std::move(tokens)).ParseWholeExpression();
}

}  // namespace cypher
